// Package cache models set-associative caches and multi-level cache
// hierarchies, mirroring the memory system of the paper's Haswell testbed
// (32 KB 8-way L1I/L1D, 256 KB 8-way unified L2, 30 MB shared L3, 64-byte
// lines).
//
// The models are functional (hit/miss behaviour and replacement state),
// not timed; the pipeline model converts the hierarchy's per-level hit and
// miss counts into stall cycles.
package cache

import "fmt"

// Replacement selects a victim way within a set and tracks recency state.
// Implementations are created per cache via a Policy factory.
type Replacement interface {
	// Touch records a hit or fill of way w in set s.
	Touch(s, w int)
	// Victim returns the way to evict from set s.
	Victim(s int) int
	// Fill records that way w of set s was filled with a new line.
	// Most policies treat this like Touch; SRRIP inserts at long
	// re-reference interval instead.
	Fill(s, w int)
}

// Policy names a replacement policy and constructs its per-cache state.
type Policy interface {
	// Name returns the canonical lowercase policy name.
	Name() string
	// New returns replacement state for a cache with sets sets of
	// associativity ways.
	New(sets, ways int) Replacement
}

// Config describes one cache level.
type Config struct {
	// Name labels the cache in stats output (e.g. "l1d").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// LineBytes is the cache line size.
	LineBytes int
	// Policy selects the replacement policy; nil means LRU.
	Policy Policy
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache %q: size %d not a multiple of line size %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	sets := lines / c.Ways
	if sets <= 0 || sets*c.Ways != lines {
		return fmt.Errorf("cache %q: %d lines not divisible into %d ways", c.Name, lines, c.Ways)
	}
	return nil
}

// Stats accumulates access outcomes for one cache.
type Stats struct {
	// Hits counts accesses that found their line resident.
	Hits uint64
	// Misses counts accesses that did not.
	Misses uint64
	// Evictions counts valid lines displaced by fills.
	Evictions uint64
}

// Accesses returns Hits + Misses.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns Misses / Accesses, or 0 when there were no accesses.
func (s Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

// Cache is a single set-associative cache level.
type Cache struct {
	cfg       Config
	sets      int
	ways      int
	lineShift uint
	setMask   uint64 // sets-1 when sets is a power of two, else 0
	pow2      bool
	tags      []uint64 // sets*ways entries
	valid     []bool
	// keys mirrors tags with the valid bit folded in (tag | keyValid, 0
	// when empty) so the batched kernel's probe is a single compare per
	// way. It is maintained by fill and Reset, the only places lines
	// appear or disappear, so it stays coherent under both kernels.
	keys       []uint64
	repl       Replacement
	stats      Stats
	loadStats  Stats // subset of stats attributable to load uops
	storeStats Stats

	// Batched-kernel fast path state (see AccessHot). tagShift is the
	// precomputed bitsFor(sets); lru devirtualizes the default policy so
	// the hot path touches it without an interface dispatch; memoLine and
	// memoHit, allocated by EnableFetchMemo, record the last line accessed
	// in each set for the fetch deduplication short-circuit.
	tagShift uint
	lru      *lruState
	memoLine []uint64
	memoHit  []bool

	// fills counts every line fill, including prefetch fills that the
	// demand statistics exclude; sampled runs use it to estimate the
	// cache's turnover rate (see Age). ageCursor round-robins Age's
	// evictions across sets.
	fills     uint64
	ageCursor int

	// OnEvict, when non-nil, is called with the base address of every
	// valid line a fill displaces, before the line is overwritten. A
	// shared last-level cache uses it to back-invalidate the private
	// copies of the victim line (inclusive-hierarchy accounting). The
	// callback must not access this cache.
	OnEvict func(addr uint64)
}

// New constructs a cache from cfg. It panics if cfg is invalid; callers
// that accept external configuration should call cfg.Validate first.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic("cache: " + err.Error())
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	pol := cfg.Policy
	if pol == nil {
		pol = LRU{}
	}
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		ways:      cfg.Ways,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		pow2:      sets&(sets-1) == 0,
		tags:      make([]uint64, lines),
		valid:     make([]bool, lines),
		keys:      make([]uint64, lines),
		repl:      pol.New(sets, cfg.Ways),
		tagShift:  uint(bitsFor(sets)),
	}
	c.lru, _ = c.repl.(*lruState)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return c.sets * c.ways }

// Stats returns the accumulated access statistics.
func (c *Cache) Stats() Stats { return c.stats }

// LoadStats returns statistics for accesses marked as loads.
func (c *Cache) LoadStats() Stats { return c.loadStats }

// StoreStats returns statistics for accesses marked as stores.
func (c *Cache) StoreStats() Stats { return c.storeStats }

// AccessKind tells the cache what the access is on behalf of, so per-kind
// statistics can mirror the paper's load-specific counters
// (mem_load_uops_retired.l*_hit/miss).
type AccessKind uint8

const (
	// AccessLoad is a demand load.
	AccessLoad AccessKind = iota
	// AccessStore is a demand store (write-allocate).
	AccessStore
	// AccessFetch is an instruction fetch.
	AccessFetch
	// AccessPrefetch is a hardware prefetch (not counted in demand stats).
	AccessPrefetch
)

// keyValid is the occupancy bit folded into Cache.keys entries. Tags are
// line numbers shifted down by the set-index width, so bit 63 is always
// clear in a real tag.
const keyValid = uint64(1) << 63

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.lineShift
	if c.pow2 {
		// Fast path: power-of-two set count indexes by low bits; the tag
		// is the remaining high bits.
		return int(line & c.setMask), line >> uint(bitsFor(c.sets))
	}
	// Non-power-of-two set counts (e.g. a 30 MB 20-way L3) index by
	// modulo; the full line number serves as the tag.
	return int(line % uint64(c.sets)), line
}

func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Lookup probes the cache without modifying replacement state or
// statistics. It reports whether the line holding addr is resident.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Access performs a demand access for addr. It returns true on hit. On a
// miss the line is filled (write-allocate for stores), possibly evicting a
// victim; the caller is responsible for propagating the miss to the next
// level.
func (c *Cache) Access(addr uint64, kind AccessKind) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	hitWay := -1
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			hitWay = w
			break
		}
	}
	hit := hitWay >= 0
	if hit {
		c.repl.Touch(set, hitWay)
	} else {
		w := c.fill(set, tag)
		c.repl.Fill(set, w)
	}
	if kind != AccessPrefetch {
		c.record(kind, hit)
	}
	return hit
}

func (c *Cache) fill(set int, tag uint64) int {
	c.fills++
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			c.valid[base+w] = true
			c.tags[base+w] = tag
			c.keys[base+w] = tag | keyValid
			return w
		}
	}
	w := c.repl.Victim(set)
	if w < 0 || w >= c.ways {
		panic(fmt.Sprintf("cache %q: policy returned invalid victim way %d", c.cfg.Name, w))
	}
	c.stats.Evictions++
	if c.OnEvict != nil {
		c.OnEvict(c.lineAddr(set, c.tags[base+w]))
	}
	c.tags[base+w] = tag
	c.keys[base+w] = tag | keyValid
	return w
}

// lineAddr reconstructs a line's base address from its set and tag,
// inverting index.
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	line := tag
	if c.pow2 {
		line = tag<<c.tagShift | uint64(set)
	}
	return line << c.lineShift
}

// Invalidate drops the line holding addr if it is resident, reporting
// whether it was. The vacated way is refilled first on the set's next
// miss (fill scans for empty ways before consulting the policy), and
// the set's fetch memo is cleared so memo short-circuits can never
// resurrect an invalidated line. Statistics are untouched: an
// invalidation is not a demand access.
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.valid[base+w] = false
			c.keys[base+w] = 0
			if c.memoLine != nil {
				c.memoHit[set] = false
			}
			return true
		}
	}
	return false
}

func (c *Cache) record(kind AccessKind, hit bool) {
	bump := func(s *Stats) {
		if hit {
			s.Hits++
		} else {
			s.Misses++
		}
	}
	bump(&c.stats)
	switch kind {
	case AccessLoad:
		bump(&c.loadStats)
	case AccessStore:
		bump(&c.storeStats)
	}
}

// RecordHits credits n demand hits of the given kind without probing the
// arrays or touching replacement state. It exists for batched callers
// that have proven the accesses would hit and leave replacement state
// unchanged — e.g. the machine's fetch loop deduplicating consecutive
// instruction fetches of one line under an idempotent-touch policy. The
// resulting statistics are bit-identical to performing the accesses.
func (c *Cache) RecordHits(kind AccessKind, n uint64) {
	if n == 0 || kind == AccessPrefetch {
		return
	}
	c.stats.Hits += n
	switch kind {
	case AccessLoad:
		c.loadStats.Hits += n
	case AccessStore:
		c.storeStats.Hits += n
	}
}

// AccessHot is Access optimized for the batched simulation kernel: the
// tag shift is precomputed instead of re-derived per call, the default
// LRU policy is touched through a devirtualized handle, and statistics
// are recorded without a closure. It performs exactly the same state
// transitions and statistics updates as Access — the machine equivalence
// tests compare whole simulations run through each — and additionally
// maintains the per-set fetch memo when EnableFetchMemo was called. The
// legacy Access is kept verbatim as the reference kernel's path; callers
// must not mix Access and FetchHot on one cache, since Access does not
// update the memo.
func (c *Cache) AccessHot(addr uint64, kind AccessKind) bool {
	line := addr >> c.lineShift
	var set int
	var tag uint64
	if c.pow2 {
		set, tag = int(line&c.setMask), line>>c.tagShift
	} else {
		set, tag = int(line%uint64(c.sets)), line
	}
	base := set * c.ways
	// Subslicing the probe window lets the compiler drop the per-way
	// bounds checks the legacy Access pays, and the folded valid|tag keys
	// make the scan one compare per way. The scan runs to the end with a
	// conditional select instead of breaking early: the hit way is
	// data-dependent and effectively uniform, so an early-exit branch
	// mispredicts almost every probe, which costs more than the few
	// extra compares.
	keys := c.keys[base : base+c.ways]
	want := tag | keyValid
	hitWay := -1
	for w := range keys {
		if keys[w] == want {
			hitWay = w
		}
	}
	hit := hitWay >= 0
	if hit {
		if c.lru != nil {
			c.lru.Touch(set, hitWay)
		} else {
			c.repl.Touch(set, hitWay)
		}
	} else {
		w := c.fill(set, tag)
		if c.lru != nil {
			c.lru.Fill(set, w)
		} else {
			c.repl.Fill(set, w)
		}
	}
	if kind != AccessPrefetch {
		if hit {
			c.stats.Hits++
		} else {
			c.stats.Misses++
		}
		switch kind {
		case AccessLoad:
			if hit {
				c.loadStats.Hits++
			} else {
				c.loadStats.Misses++
			}
		case AccessStore:
			if hit {
				c.storeStats.Hits++
			} else {
				c.storeStats.Misses++
			}
		}
	}
	if c.memoLine != nil {
		c.memoLine[set] = line
		c.memoHit[set] = hit
	}
	return hit
}

// EnableFetchMemo allocates the per-set last-access memo that lets
// FetchHot short-circuit repeated fetches. Callers must only enable it
// when TouchIdempotent holds for the cache's policy, and must then route
// every access to this cache through AccessHot/FetchHot so the memo
// stays coherent.
func (c *Cache) EnableFetchMemo() {
	c.memoLine = make([]uint64, c.sets)
	c.memoHit = make([]bool, c.sets)
}

// FetchHot performs a fetch-kind demand access with the set-memo
// short-circuit: if the last access to this line's set was this very line
// and it hit, the line is still resident and most-recently-used, so under
// an idempotent-touch policy re-probing and re-touching it is observably
// a no-op (no future Victim decision can change — see TouchIdempotent).
// The access is then answered by a statistics credit alone, which is
// bit-identical to what Access would have recorded.
func (c *Cache) FetchHot(addr uint64) bool {
	if c.memoLine != nil {
		line := addr >> c.lineShift
		var set int
		if c.pow2 {
			set = int(line & c.setMask)
		} else {
			set = int(line % uint64(c.sets))
		}
		if c.memoHit[set] && c.memoLine[set] == line {
			c.stats.Hits++
			return true
		}
	}
	return c.AccessHot(addr, AccessFetch)
}

// MemoHit reports whether addr hits the per-set last-line memo: the last
// access to its set was the same line and found it resident. It is small
// enough to inline, so the batched kernel's sweeps can test the memo
// without a call and fall through to AccessHot themselves, crediting the
// hit through RecordHits. Callers own the statistics credit; MemoHit
// records nothing.
func (c *Cache) MemoHit(addr uint64) bool {
	line := addr >> c.lineShift
	var set int
	if c.pow2 {
		set = int(line & c.setMask)
	} else {
		set = int(line % uint64(c.sets))
	}
	return c.memoLine != nil && c.memoHit[set] && c.memoLine[set] == line
}

// DemandHot is FetchHot for demand load/store accesses: the same per-set
// last-line memo short-circuit, but the statistics credit is recorded
// under the caller's access kind so load/store hit breakdowns stay
// bit-identical to the un-memoized path. The soundness argument is the
// one in FetchHot: a memo hit proves the line is resident and
// most-recently-used in its set, so under an idempotent-touch policy the
// probe and Touch are observably no-ops.
func (c *Cache) DemandHot(addr uint64, kind AccessKind) bool {
	if c.memoLine != nil {
		line := addr >> c.lineShift
		var set int
		if c.pow2 {
			set = int(line & c.setMask)
		} else {
			set = int(line % uint64(c.sets))
		}
		if c.memoHit[set] && c.memoLine[set] == line {
			c.stats.Hits++
			switch kind {
			case AccessLoad:
				c.loadStats.Hits++
			case AccessStore:
				c.storeStats.Hits++
			}
			return true
		}
	}
	return c.AccessHot(addr, kind)
}

// Fills returns the total number of line fills, including prefetch
// fills the demand statistics exclude. Together with an instruction
// count it yields the cache's turnover rate, which sampled runs use to
// size Age calls across skipped gaps.
func (c *Cache) Fills() uint64 { return c.fills }

// Age invalidates up to n replacement-policy victims, one per set,
// round-robin across sets. Sampled runs call it to model capacity
// turnover across a skipped gap: during the gap the stream would have
// kept filling the cache, displacing exactly the lines the replacement
// policy ranks as victims, while the hot lines it would keep re-touching
// survive. Simply freezing the cache instead leaves those victims
// resident, and a cyclic reference stream then re-hits them in the next
// counted window, biasing its miss rate low. Each invalidated way is
// touched to most-recently-used so successive rounds through the same
// set pick fresh victims and remaining valid lines keep their relative
// recency order; invalidated ways are refilled first on the next miss,
// so the touch is never observable to demand accesses. Statistics are
// untouched.
func (c *Cache) Age(n int) {
	if lines := c.sets * c.ways; n > lines {
		n = lines
	}
	for i := 0; i < n; i++ {
		s := c.ageCursor
		c.ageCursor++
		if c.ageCursor == c.sets {
			c.ageCursor = 0
		}
		var w int
		if c.lru != nil {
			w = c.lru.Victim(s)
		} else {
			w = c.repl.Victim(s)
		}
		idx := s*c.ways + w
		if c.valid[idx] {
			c.valid[idx] = false
			c.keys[idx] = 0
		}
		if c.lru != nil {
			c.lru.Touch(s, w)
		} else {
			c.repl.Touch(s, w)
		}
		if c.memoLine != nil {
			c.memoHit[s] = false
		}
	}
}

// Reset invalidates all lines and zeroes statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.keys[i] = 0
	}
	for i := range c.memoHit {
		c.memoHit[i] = false
	}
	c.stats = Stats{}
	c.loadStats = Stats{}
	c.storeStats = Stats{}
	c.fills = 0
	c.ageCursor = 0
}

// ResetStats zeroes the access statistics while keeping cache contents,
// for discarding a warmup window.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	c.loadStats = Stats{}
	c.storeStats = Stats{}
}
