package cache

// Level identifies a position in the three-level hierarchy.
type Level int

const (
	// L1 is the first (closest) level; the hierarchy keeps separate L1
	// instruction and data caches.
	L1 Level = iota
	// L2 is the private unified mid-level cache.
	L2
	// L3 is the shared last-level cache.
	L3
	numLevels
)

// NumLevels is the number of data-path cache levels.
const NumLevels = int(numLevels)

// String returns "l1", "l2" or "l3".
func (l Level) String() string {
	switch l {
	case L1:
		return "l1"
	case L2:
		return "l2"
	case L3:
		return "l3"
	default:
		return "l?"
	}
}

// HitLevel reports where a demand access was satisfied.
type HitLevel int

const (
	// HitL1 means the access hit in the level-one cache.
	HitL1 HitLevel = iota
	// HitL2 means it missed L1 and hit L2.
	HitL2
	// HitL3 means it missed L1 and L2 and hit L3.
	HitL3
	// HitMemory means it missed all cache levels.
	HitMemory
)

// String names the hit level.
func (h HitLevel) String() string {
	switch h {
	case HitL1:
		return "l1_hit"
	case HitL2:
		return "l2_hit"
	case HitL3:
		return "l3_hit"
	case HitMemory:
		return "mem"
	default:
		return "hit?"
	}
}

// HierarchyConfig configures a three-level hierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2, L3 Config
	// Prefetcher, when non-nil, is attached to the L2 data path.
	Prefetcher Prefetcher
}

// Validate checks all level configurations.
func (h HierarchyConfig) Validate() error {
	for _, c := range []Config{h.L1I, h.L1D, h.L2, h.L3} {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Hierarchy is a private L1I/L1D + private L2 + (possibly shared) L3 cache
// stack. L3 may be shared between several hierarchies to model multi-core
// contention: construct one hierarchy per core with NewShared.
type Hierarchy struct {
	l1i, l1d, l2 *Cache
	l3           *Cache
	pf           Prefetcher
}

// NewHierarchy builds a hierarchy with a private L3.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return NewShared(cfg, New(cfg.L3))
}

// NewShared builds a hierarchy whose last level is the supplied (possibly
// shared) L3 cache. cfg.L3 is ignored.
func NewShared(cfg HierarchyConfig, l3 *Cache) *Hierarchy {
	return &Hierarchy{
		l1i: New(cfg.L1I),
		l1d: New(cfg.L1D),
		l2:  New(cfg.L2),
		l3:  l3,
		pf:  cfg.Prefetcher,
	}
}

// Cache returns the cache at the given level of the data path (L1 returns
// the L1D cache).
func (h *Hierarchy) Cache(l Level) *Cache {
	switch l {
	case L1:
		return h.l1d
	case L2:
		return h.l2
	case L3:
		return h.l3
	default:
		panic("cache: invalid level")
	}
}

// L1I returns the instruction cache.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// Fetch performs an instruction fetch for pc and reports where it hit.
func (h *Hierarchy) Fetch(pc uint64) HitLevel {
	if h.l1i.Access(pc, AccessFetch) {
		return HitL1
	}
	if h.l2.Access(pc, AccessFetch) {
		return HitL2
	}
	if h.l3.Access(pc, AccessFetch) {
		return HitL3
	}
	return HitMemory
}

// Data performs a demand data access (load or store, per kind) and reports
// where it hit. Misses propagate down the hierarchy with fills at every
// level (inclusive behaviour). When a prefetcher is attached, it observes
// L1 misses and issues prefetch fills into L2/L3.
func (h *Hierarchy) Data(addr uint64, kind AccessKind) HitLevel {
	level := HitMemory
	switch {
	case h.l1d.Access(addr, kind):
		level = HitL1
	case h.l2.Access(addr, kind):
		level = HitL2
	case h.l3.Access(addr, kind):
		level = HitL3
	}
	if level != HitL1 && h.pf != nil {
		for _, p := range h.pf.Observe(addr) {
			if !h.l2.Access(p, AccessPrefetch) {
				h.l3.Access(p, AccessPrefetch)
			}
		}
	}
	return level
}

// FetchHot is Fetch through the batched-kernel fast path: the L1I probe
// uses the fetch memo short-circuit (see Cache.FetchHot) and lower levels
// use AccessHot. State transitions and statistics are bit-identical to
// Fetch; callers must not mix the two on one hierarchy.
func (h *Hierarchy) FetchHot(pc uint64) HitLevel {
	if h.l1i.FetchHot(pc) {
		return HitL1
	}
	if h.l2.AccessHot(pc, AccessFetch) {
		return HitL2
	}
	if h.l3.AccessHot(pc, AccessFetch) {
		return HitL3
	}
	return HitMemory
}

// DataHot is Data through the batched-kernel fast path (AccessHot at
// every level, including prefetch fills). State transitions and
// statistics are bit-identical to Data.
func (h *Hierarchy) DataHot(addr uint64, kind AccessKind) HitLevel {
	level := HitMemory
	switch {
	case h.l1d.DemandHot(addr, kind):
		level = HitL1
	case h.l2.AccessHot(addr, kind):
		level = HitL2
	case h.l3.AccessHot(addr, kind):
		level = HitL3
	}
	if level != HitL1 && h.pf != nil {
		for _, p := range h.pf.Observe(addr) {
			if !h.l2.AccessHot(p, AccessPrefetch) {
				h.l3.AccessHot(p, AccessPrefetch)
			}
		}
	}
	return level
}

// DataHotMiss completes a demand access that the caller already probed
// (and missed) in L1D via DemandHot: the L2 and L3 lookups plus the
// prefetcher observation — exactly the non-L1 arm of DataHot. Splitting
// the access this way lets the batched kernel's data sweep keep the
// dominant L1-hit case down to a single call.
func (h *Hierarchy) DataHotMiss(addr uint64, kind AccessKind) HitLevel {
	level := HitMemory
	switch {
	case h.l2.AccessHot(addr, kind):
		level = HitL2
	case h.l3.AccessHot(addr, kind):
		level = HitL3
	}
	if h.pf != nil {
		for _, p := range h.pf.Observe(addr) {
			if !h.l2.AccessHot(p, AccessPrefetch) {
				h.l3.AccessHot(p, AccessPrefetch)
			}
		}
	}
	return level
}

// Reset clears the private levels and statistics. The shared L3 is reset
// too; when sharing an L3 across hierarchies reset it only once.
func (h *Hierarchy) Reset() {
	h.l1i.Reset()
	h.l1d.Reset()
	h.l2.Reset()
	h.l3.Reset()
}

// Prefetcher observes demand miss addresses and proposes line addresses to
// prefetch.
type Prefetcher interface {
	// Observe is called with the address of each L1 demand miss and
	// returns the addresses to prefetch (possibly none).
	Observe(addr uint64) []uint64
}

// NextLinePrefetcher prefetches the Degree sequentially following lines on
// every observed miss.
type NextLinePrefetcher struct {
	// LineBytes is the cache line size; it must match the hierarchy's.
	LineBytes int
	// Degree is how many consecutive lines to prefetch (default 1).
	Degree int

	buf []uint64
}

// Observe implements Prefetcher.
func (p *NextLinePrefetcher) Observe(addr uint64) []uint64 {
	d := p.Degree
	if d <= 0 {
		d = 1
	}
	p.buf = p.buf[:0]
	line := addr &^ uint64(p.LineBytes-1)
	for i := 1; i <= d; i++ {
		p.buf = append(p.buf, line+uint64(i*p.LineBytes))
	}
	return p.buf
}

// StridePrefetcher detects constant-stride streams with a small PC-less
// table of recent deltas and prefetches ahead of the detected stride.
type StridePrefetcher struct {
	// LineBytes is the cache line size.
	LineBytes int
	// Degree is how far ahead (in strides) to prefetch (default 2).
	Degree int

	last   uint64
	stride int64
	conf   int
	buf    []uint64
}

// Observe implements Prefetcher.
func (p *StridePrefetcher) Observe(addr uint64) []uint64 {
	p.buf = p.buf[:0]
	line := addr &^ uint64(p.LineBytes-1)
	if p.last != 0 {
		s := int64(line) - int64(p.last)
		if s == p.stride && s != 0 {
			if p.conf < 3 {
				p.conf++
			}
		} else {
			p.stride = s
			p.conf = 0
		}
	}
	p.last = line
	if p.conf >= 2 {
		d := p.Degree
		if d <= 0 {
			d = 2
		}
		for i := 1; i <= d; i++ {
			p.buf = append(p.buf, uint64(int64(line)+p.stride*int64(i)))
		}
	}
	return p.buf
}

// ResetStats zeroes statistics on all levels (including the shared L3)
// while keeping contents warm.
func (h *Hierarchy) ResetStats() {
	h.l1i.ResetStats()
	h.l1d.ResetStats()
	h.l2.ResetStats()
	h.l3.ResetStats()
}
