package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func smallConfig(name string, policy Policy) Config {
	return Config{Name: name, SizeBytes: 1024, Ways: 4, LineBytes: 64, Policy: policy}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig("ok", nil)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero"},
		{Name: "line", SizeBytes: 1024, Ways: 4, LineBytes: 48},
		{Name: "size", SizeBytes: 1000, Ways: 4, LineBytes: 64},
		{Name: "ways", SizeBytes: 1024, Ways: 3, LineBytes: 64},
	}
	// Non-power-of-two set counts are allowed (modulo indexing), e.g. a
	// 30 MB 20-way L3.
	if err := (Config{Name: "np2", SizeBytes: 64 * 4 * 3, Ways: 4, LineBytes: 64}).Validate(); err != nil {
		t.Errorf("non-pow2 sets rejected: %v", err)
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted, want error", c.Name)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(smallConfig("t", nil))
	if c.Access(0x1000, AccessLoad) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000, AccessLoad) {
		t.Fatal("second access missed")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestSameLineDifferentBytes(t *testing.T) {
	c := New(smallConfig("t", nil))
	c.Access(0x1000, AccessLoad)
	if !c.Access(0x103F, AccessLoad) {
		t.Fatal("access to same 64B line missed")
	}
	if c.Access(0x1040, AccessLoad) {
		t.Fatal("access to next line hit")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 1 KB, 4-way, 64 B lines: 4 sets. Fill one set with 4 lines, touch
	// the first, then insert a 5th: the second-inserted line must be the
	// victim.
	c := New(smallConfig("t", LRU{}))
	// Addresses mapping to set 0: line number multiple of 4.
	addr := func(i int) uint64 { return uint64(i) * 4 * 64 }
	for i := 0; i < 4; i++ {
		c.Access(addr(i), AccessLoad)
	}
	c.Access(addr(0), AccessLoad) // refresh line 0
	c.Access(addr(4), AccessLoad) // evicts line 1
	if !c.Lookup(addr(0)) {
		t.Error("recently touched line evicted")
	}
	if c.Lookup(addr(1)) {
		t.Error("LRU line not evicted")
	}
	for _, i := range []int{2, 3, 4} {
		if !c.Lookup(addr(i)) {
			t.Errorf("line %d unexpectedly evicted", i)
		}
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// A working set equal to capacity accessed repeatedly must only
	// produce cold misses under LRU.
	c := New(Config{Name: "t", SizeBytes: 4096, Ways: 8, LineBytes: 64})
	lines := c.Lines()
	for pass := 0; pass < 5; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*64), AccessLoad)
		}
	}
	st := c.Stats()
	if st.Misses != uint64(lines) {
		t.Errorf("misses = %d, want %d (cold only)", st.Misses, lines)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// Cyclic access to 2x capacity under LRU misses every time.
	c := New(Config{Name: "t", SizeBytes: 4096, Ways: 8, LineBytes: 64})
	lines := c.Lines() * 2
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*64), AccessLoad)
		}
	}
	st := c.Stats()
	if st.Hits != 0 {
		t.Errorf("hits = %d, want 0 under cyclic thrash", st.Hits)
	}
}

func TestPerKindStats(t *testing.T) {
	c := New(smallConfig("t", nil))
	c.Access(0x0, AccessLoad)   // load miss
	c.Access(0x0, AccessStore)  // store hit
	c.Access(0x40, AccessFetch) // fetch miss, not in load/store stats
	if got := c.LoadStats(); got.Misses != 1 || got.Hits != 0 {
		t.Errorf("load stats = %+v", got)
	}
	if got := c.StoreStats(); got.Hits != 1 || got.Misses != 0 {
		t.Errorf("store stats = %+v", got)
	}
	if got := c.Stats(); got.Accesses() != 3 {
		t.Errorf("total accesses = %d, want 3", got.Accesses())
	}
}

func TestPrefetchNotCounted(t *testing.T) {
	c := New(smallConfig("t", nil))
	c.Access(0x0, AccessPrefetch)
	if got := c.Stats(); got.Accesses() != 0 {
		t.Errorf("prefetch counted in stats: %+v", got)
	}
	if !c.Lookup(0x0) {
		t.Error("prefetch did not fill the line")
	}
}

func TestReset(t *testing.T) {
	c := New(smallConfig("t", nil))
	c.Access(0x0, AccessLoad)
	c.Reset()
	if c.Lookup(0x0) {
		t.Error("line survived reset")
	}
	if got := c.Stats(); got.Accesses() != 0 {
		t.Errorf("stats survived reset: %+v", got)
	}
}

// TestPoliciesKeepResidentSetBounded: under any policy, after accessing n
// distinct lines the number still resident is at most capacity, and every
// hit reported corresponds to a previously accessed line.
func TestPoliciesProperty(t *testing.T) {
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			f := func(seed uint64) bool {
				c := New(smallConfig("t", pol))
				rng := xrand.NewPCG32(seed)
				seen := map[uint64]bool{}
				for i := 0; i < 2000; i++ {
					addr := uint64(rng.Intn(64)) * 64
					line := addr / 64
					hit := c.Access(addr, AccessLoad)
					if hit && !seen[line] {
						return false // hit on a never-seen line
					}
					seen[line] = true
				}
				// Count resident lines; must not exceed capacity.
				resident := 0
				for l := uint64(0); l < 64; l++ {
					if c.Lookup(l * 64) {
						resident++
					}
				}
				return resident <= c.Lines()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestPLRUApproximatesLRUOnSequential(t *testing.T) {
	// On a repeated sequential scan that fits, PLRU behaves like LRU:
	// only cold misses.
	c := New(Config{Name: "t", SizeBytes: 4096, Ways: 8, LineBytes: 64, Policy: TreePLRU{}})
	lines := c.Lines()
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*64), AccessLoad)
		}
	}
	if st := c.Stats(); st.Misses != uint64(lines) {
		t.Errorf("plru misses = %d, want %d", st.Misses, lines)
	}
}

func TestPLRURequiresPow2Ways(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TreePLRU with 3 ways did not panic")
		}
	}()
	TreePLRU{}.New(4, 3)
}

func TestSRRIPScanResistance(t *testing.T) {
	// A hot line re-referenced between scan bursts should survive better
	// under SRRIP than the scan lines do.
	c := New(Config{Name: "t", SizeBytes: 1024, Ways: 4, LineBytes: 64, Policy: SRRIP{}})
	hot := uint64(0)
	c.Access(hot, AccessLoad)
	hits := 0
	for burst := 0; burst < 50; burst++ {
		if c.Access(hot, AccessLoad) {
			hits++
		}
		// Scan 2 distinct lines mapping to the same set (set 0: line%4==0).
		for i := 1; i <= 2; i++ {
			c.Access(uint64((burst*2+i)*4*64), AccessLoad)
		}
	}
	if hits < 40 {
		t.Errorf("hot line hits = %d/50 under SRRIP, want >= 40", hits)
	}
}

func TestHierarchyMissPropagation(t *testing.T) {
	h := NewHierarchy(testHierarchyConfig())
	// First access misses everywhere.
	if got := h.Data(0x1000, AccessLoad); got != HitMemory {
		t.Fatalf("cold access = %v, want mem", got)
	}
	// Second hits L1.
	if got := h.Data(0x1000, AccessLoad); got != HitL1 {
		t.Fatalf("warm access = %v, want l1_hit", got)
	}
	// All levels saw exactly one access each so far.
	for l := L1; l <= L3; l++ {
		st := h.Cache(l).Stats()
		if l == L1 {
			if st.Accesses() != 2 {
				t.Errorf("l1 accesses = %d, want 2", st.Accesses())
			}
		} else if st.Accesses() != 1 {
			t.Errorf("%v accesses = %d, want 1", l, st.Accesses())
		}
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy(testHierarchyConfig())
	// Fill L1 beyond capacity with set-conflicting lines so an early line
	// is evicted from L1 but still in L2.
	l1 := h.Cache(L1)
	sets := l1.Sets()
	for i := 0; i < l1.Config().Ways+2; i++ {
		h.Data(uint64(i*sets*64), AccessLoad)
	}
	if got := h.Data(0, AccessLoad); got != HitL2 {
		t.Fatalf("evicted-from-L1 line = %v, want l2_hit", got)
	}
}

func TestHierarchyFetchPath(t *testing.T) {
	h := NewHierarchy(testHierarchyConfig())
	if got := h.Fetch(0x400000); got != HitMemory {
		t.Fatalf("cold fetch = %v, want mem", got)
	}
	if got := h.Fetch(0x400000); got != HitL1 {
		t.Fatalf("warm fetch = %v, want l1_hit", got)
	}
	if h.L1I().Stats().Accesses() != 2 {
		t.Error("L1I stats not updated by fetch")
	}
	if h.Cache(L1).Stats().Accesses() != 0 {
		t.Error("fetch polluted L1D stats")
	}
}

func TestSharedL3Contention(t *testing.T) {
	cfg := testHierarchyConfig()
	l3 := New(cfg.L3)
	a := NewShared(cfg, l3)
	b := NewShared(cfg, l3)
	// Core A warms a line into L3 (via its private path).
	a.Data(0x9000, AccessLoad)
	// Core B's first access to the same line hits in the shared L3.
	if got := b.Data(0x9000, AccessLoad); got != HitL3 {
		t.Fatalf("core B access = %v, want l3_hit (shared)", got)
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	cfg := testHierarchyConfig()
	cfg.Prefetcher = &NextLinePrefetcher{LineBytes: 64, Degree: 1}
	h := NewHierarchy(cfg)
	h.Data(0x0, AccessLoad) // miss; prefetches 0x40 into L2
	if got := h.Data(0x40, AccessLoad); got != HitL2 {
		t.Fatalf("next line = %v, want l2_hit from prefetch", got)
	}
}

func TestStridePrefetcherDetectsStream(t *testing.T) {
	p := &StridePrefetcher{LineBytes: 64, Degree: 2}
	// Feed a stride-1 line stream; after confidence builds, prefetches
	// appear and target line+stride.
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.Observe(uint64(i * 64))
	}
	if len(got) != 2 {
		t.Fatalf("prefetch count = %d, want 2", len(got))
	}
	if got[0] != 6*64 || got[1] != 7*64 {
		t.Errorf("prefetch targets = %v, want [384 448]", got)
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	p := &StridePrefetcher{LineBytes: 64}
	rng := xrand.NewPCG32(77)
	issued := 0
	for i := 0; i < 1000; i++ {
		issued += len(p.Observe(uint64(rng.Intn(1<<20)) * 64))
	}
	if issued > 50 {
		t.Errorf("stride prefetcher issued %d prefetches on random stream", issued)
	}
}

func testHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I: Config{Name: "l1i", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64},
		L1D: Config{Name: "l1d", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64},
		L2:  Config{Name: "l2", SizeBytes: 1 << 12, Ways: 4, LineBytes: 64},
		L3:  Config{Name: "l3", SizeBytes: 1 << 14, Ways: 8, LineBytes: 64},
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(Config{Name: "l2", SizeBytes: 256 << 10, Ways: 8, LineBytes: 64})
	rng := xrand.NewPCG32(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(rng.Intn(1<<20))*64, AccessLoad)
	}
}

func BenchmarkHierarchyData(b *testing.B) {
	h := NewHierarchy(HierarchyConfig{
		L1I: Config{Name: "l1i", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L1D: Config{Name: "l1d", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L2:  Config{Name: "l2", SizeBytes: 256 << 10, Ways: 8, LineBytes: 64},
		L3:  Config{Name: "l3", SizeBytes: 30 << 20, Ways: 12, LineBytes: 64},
	})
	rng := xrand.NewPCG32(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Data(uint64(rng.Intn(1<<22))*64, AccessLoad)
	}
}
