package branch

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/xrand"
)

func TestCounter2Saturation(t *testing.T) {
	c := counter2(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter after many takens = %d, want 3", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter after many not-takens = %d, want 0", c)
	}
}

// trainAndMeasure feeds a deterministic outcome function for one branch PC
// and returns the mispredict rate over the last half (after warmup).
func trainAndMeasure(p Predictor, outcome func(i int) bool, n int) float64 {
	const pc = 0x400100
	misp := 0
	for i := 0; i < n; i++ {
		taken := outcome(i)
		if p.Predict(pc) != taken && i >= n/2 {
			misp++
		}
		p.Update(pc, taken)
	}
	return float64(misp) / float64(n/2)
}

func TestAllPredictorsLearnAlwaysTaken(t *testing.T) {
	for _, p := range Predictors() {
		rate := trainAndMeasure(p, func(int) bool { return true }, 2000)
		if rate > 0.01 {
			t.Errorf("%s: mispredict rate %v on always-taken, want ~0", p.Name(), rate)
		}
	}
}

func TestDynamicPredictorsLearnAlwaysNotTaken(t *testing.T) {
	for _, p := range Predictors() {
		if p.Name() == "static-taken" {
			continue
		}
		rate := trainAndMeasure(p, func(int) bool { return false }, 2000)
		if rate > 0.01 {
			t.Errorf("%s: mispredict rate %v on never-taken, want ~0", p.Name(), rate)
		}
	}
}

func TestHistoryPredictorsLearnAlternating(t *testing.T) {
	// A strict T/NT alternation defeats bimodal but is perfectly
	// predictable with history.
	for _, p := range []Predictor{
		NewGshare(14, 12),
		NewTwoLevelLocal(10, 12),
		NewTournament(13),
		NewPerceptron(10, 24),
	} {
		rate := trainAndMeasure(p, func(i int) bool { return i%2 == 0 }, 4000)
		if rate > 0.02 {
			t.Errorf("%s: mispredict rate %v on alternating pattern, want ~0", p.Name(), rate)
		}
	}
}

func TestBimodalCannotLearnAlternating(t *testing.T) {
	rate := trainAndMeasure(NewBimodal(14), func(i int) bool { return i%2 == 0 }, 4000)
	if rate < 0.4 {
		t.Errorf("bimodal mispredict rate %v on alternating pattern, expected high", rate)
	}
}

func TestGshareLearnsPeriodicPattern(t *testing.T) {
	pattern := []bool{true, true, false, true, false, false, true, false}
	rate := trainAndMeasure(NewGshare(14, 12), func(i int) bool { return pattern[i%len(pattern)] }, 8000)
	if rate > 0.05 {
		t.Errorf("gshare mispredict rate %v on period-8 pattern, want ~0", rate)
	}
}

func TestPredictorsOnRandomStream(t *testing.T) {
	// Unpredictable outcomes should mispredict roughly half the time.
	rng := xrand.NewPCG32(5)
	outcomes := make([]bool, 4000)
	for i := range outcomes {
		outcomes[i] = rng.Bool(0.5)
	}
	for _, p := range []Predictor{NewBimodal(14), NewGshare(14, 12)} {
		rate := trainAndMeasure(p, func(i int) bool { return outcomes[i] }, len(outcomes))
		if rate < 0.35 || rate > 0.65 {
			t.Errorf("%s: mispredict rate %v on random stream, want ~0.5", p.Name(), rate)
		}
	}
}

func TestPredictorsIndependentPCs(t *testing.T) {
	// Two branches with opposite biases must not destructively interfere
	// in a bimodal table.
	p := NewBimodal(14)
	misp := 0
	for i := 0; i < 2000; i++ {
		for pc, taken := range map[uint64]bool{0x1000: true, 0x2000: false} {
			if p.Predict(pc) != taken && i > 100 {
				misp++
			}
			p.Update(pc, taken)
		}
	}
	if misp > 0 {
		t.Errorf("bimodal interference: %d mispredicts on two biased branches", misp)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(8)
	if b.Hit(0x1000, 0x2000) {
		t.Error("empty BTB hit")
	}
	b.Update(0x1000, 0x2000)
	if !b.Hit(0x1000, 0x2000) {
		t.Error("BTB missed installed entry")
	}
	if b.Hit(0x1000, 0x3000) {
		t.Error("BTB hit with wrong target")
	}
	// Aliasing entry evicts.
	alias := uint64(0x1000 + (1 << (8 + 2)))
	b.Update(alias, 0x4000)
	if b.Hit(0x1000, 0x2000) {
		t.Error("BTB entry survived aliasing update")
	}
}

func TestRASPairing(t *testing.T) {
	r := NewRAS(16)
	r.Push(100)
	r.Push(200)
	if got := r.Pop(); got != 200 {
		t.Errorf("Pop = %d, want 200", got)
	}
	if got := r.Pop(); got != 100 {
		t.Errorf("Pop = %d, want 100", got)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 1; i <= 6; i++ {
		r.Push(uint64(i * 10))
	}
	// Depth 4: pushes 30,40,50,60 survive.
	for want := 60; want >= 30; want -= 10 {
		if got := r.Pop(); got != uint64(want) {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

func TestUnitConditionalFlow(t *testing.T) {
	u := NewUnit(NewGshare(14, 12), 12, 16)
	up := trace.Uop{PC: 0x5000, Kind: trace.KindBranch, Branch: trace.BranchConditional, Taken: true, Target: 0x5100}
	// First resolve may mispredict (cold); after training it must not.
	for i := 0; i < 100; i++ {
		u.Resolve(&up)
	}
	if u.Resolve(&up) {
		t.Error("trained conditional branch still mispredicting")
	}
	st := u.Stats()
	ex, _ := st.Total()
	if ex != 101 {
		t.Errorf("executed = %d, want 101", ex)
	}
}

func TestUnitCallReturnPairing(t *testing.T) {
	u := NewUnit(NewBimodal(10), 12, 16)
	call := trace.Uop{PC: 0x6000, Kind: trace.KindBranch, Branch: trace.BranchDirectCall, Taken: true, Target: 0x7000}
	ret := trace.Uop{PC: 0x7040, Kind: trace.KindBranch, Branch: trace.BranchReturn, Taken: true, Target: 0x6004}
	for i := 0; i < 50; i++ {
		if u.Resolve(&call) {
			t.Fatal("direct call mispredicted")
		}
		if u.Resolve(&ret) {
			t.Fatal("paired return mispredicted")
		}
	}
}

func TestUnitReturnMismatchCounts(t *testing.T) {
	u := NewUnit(NewBimodal(10), 12, 16)
	ret := trace.Uop{PC: 0x7040, Kind: trace.KindBranch, Branch: trace.BranchReturn, Taken: true, Target: 0x1234}
	if !u.Resolve(&ret) {
		t.Error("return with empty RAS predicted correctly?")
	}
	st := u.Stats()
	if st.Mispredicted[trace.BranchReturn] != 1 {
		t.Errorf("return mispredicts = %d, want 1", st.Mispredicted[trace.BranchReturn])
	}
}

func TestUnitIndirectJumpMonomorphic(t *testing.T) {
	u := NewUnit(NewBimodal(10), 12, 16)
	up := trace.Uop{PC: 0x8000, Kind: trace.KindBranch, Branch: trace.BranchIndirectJump, Taken: true, Target: 0x9000}
	u.Resolve(&up) // cold miss trains BTB
	for i := 0; i < 20; i++ {
		if u.Resolve(&up) {
			t.Fatal("monomorphic indirect jump mispredicted after training")
		}
	}
}

func TestUnitIndirectJumpPolymorphic(t *testing.T) {
	u := NewUnit(NewBimodal(10), 12, 16)
	misp := 0
	for i := 0; i < 100; i++ {
		up := trace.Uop{PC: 0x8000, Kind: trace.KindBranch, Branch: trace.BranchIndirectJump, Taken: true,
			Target: uint64(0x9000 + (i%2)*0x100)}
		if u.Resolve(&up) {
			misp++
		}
	}
	if misp < 90 {
		t.Errorf("alternating indirect target mispredicts = %d/100, want ~100", misp)
	}
}

func TestStatsMispredictRate(t *testing.T) {
	var s Stats
	s.Executed[trace.BranchConditional] = 80
	s.Executed[trace.BranchReturn] = 20
	s.Mispredicted[trace.BranchConditional] = 5
	if got := s.MispredictRate(); got != 0.05 {
		t.Errorf("rate = %v, want 0.05", got)
	}
	var empty Stats
	if empty.MispredictRate() != 0 {
		t.Error("empty stats rate != 0")
	}
}

func BenchmarkGshareResolve(b *testing.B) {
	u := NewUnit(NewGshare(14, 12), 12, 16)
	rng := xrand.NewPCG32(3)
	ups := make([]trace.Uop, 1024)
	for i := range ups {
		ups[i] = trace.Uop{
			PC:     uint64(0x1000 + (i%64)*4),
			Kind:   trace.KindBranch,
			Branch: trace.BranchConditional,
			Taken:  rng.Bool(0.6),
			Target: 0x2000,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Resolve(&ups[i%len(ups)])
	}
}

func BenchmarkPerceptronResolve(b *testing.B) {
	u := NewUnit(NewPerceptron(10, 24), 12, 16)
	up := trace.Uop{PC: 0x1000, Kind: trace.KindBranch, Branch: trace.BranchConditional, Taken: true, Target: 0x2000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		up.Taken = i%3 != 0
		u.Resolve(&up)
	}
}
