// Package branch models dynamic branch direction predictors, a branch
// target buffer and a return-address stack, mirroring the speculation
// machinery whose mispredict counters
// (br_inst_exec.all_branches / br_misp_exec.all_branches) the paper reads.
//
// Direction predictors implement the Predictor interface; the Unit type
// combines a direction predictor with target prediction and per-class
// statistics.
package branch

import "repro/internal/trace"

// Predictor predicts conditional branch directions.
type Predictor interface {
	// Name returns the canonical lowercase predictor name.
	Name() string
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
}

// counter2 is a saturating 2-bit counter: 0,1 predict not-taken; 2,3 taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Static predicts every branch taken (backward-taken heuristics need
// target knowledge the trace provides only at resolve time, so this is the
// simplest useful baseline).
type Static struct{}

// Name implements Predictor.
func (Static) Name() string { return "static-taken" }

// Predict implements Predictor.
func (Static) Predict(pc uint64) bool { return true }

// Update implements Predictor.
func (Static) Update(pc uint64, taken bool) {}

// Bimodal is a table of 2-bit counters indexed by PC.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^bits counters.
func NewBimodal(bits int) *Bimodal {
	size := 1 << bits
	t := make([]counter2, size)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Bimodal{table: t, mask: uint64(size - 1)}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Gshare XORs a global history register with the PC to index a table of
// 2-bit counters (McFarling 1993).
type Gshare struct {
	table   []counter2
	mask    uint64
	history uint64
	histLen uint
}

// NewGshare returns a gshare predictor with 2^bits counters and histBits
// bits of global history.
func NewGshare(bits, histBits int) *Gshare {
	size := 1 << bits
	t := make([]counter2, size)
	for i := range t {
		t[i] = 2
	}
	return &Gshare{table: t, mask: uint64(size - 1), histLen: uint(histBits)}
}

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histLen) - 1
}

// TwoLevelLocal is a PAg two-level predictor: a per-branch history table
// selects a pattern-indexed counter table (Yeh & Patt 1991).
type TwoLevelLocal struct {
	histories []uint16
	histMask  uint64
	patterns  []counter2
	patMask   uint64
	histLen   uint
}

// NewTwoLevelLocal returns a local predictor with 2^histEntries local
// history registers of histBits bits and a shared 2^histBits pattern table.
func NewTwoLevelLocal(histEntriesBits, histBits int) *TwoLevelLocal {
	ph := make([]counter2, 1<<histBits)
	for i := range ph {
		ph[i] = 2
	}
	return &TwoLevelLocal{
		histories: make([]uint16, 1<<histEntriesBits),
		histMask:  uint64(1<<histEntriesBits - 1),
		patterns:  ph,
		patMask:   uint64(1<<histBits - 1),
		histLen:   uint(histBits),
	}
}

// Name implements Predictor.
func (l *TwoLevelLocal) Name() string { return "two-level-local" }

// Predict implements Predictor.
func (l *TwoLevelLocal) Predict(pc uint64) bool {
	h := l.histories[(pc>>2)&l.histMask]
	return l.patterns[uint64(h)&l.patMask].taken()
}

// Update implements Predictor.
func (l *TwoLevelLocal) Update(pc uint64, taken bool) {
	hi := (pc >> 2) & l.histMask
	h := l.histories[hi]
	pi := uint64(h) & l.patMask
	l.patterns[pi] = l.patterns[pi].update(taken)
	h <<= 1
	if taken {
		h |= 1
	}
	l.histories[hi] = h & uint16(l.patMask)
}

// Tournament combines a global (gshare) and a local predictor with a
// per-PC chooser table, in the style of the Alpha 21264.
type Tournament struct {
	global  *Gshare
	local   *TwoLevelLocal
	chooser []counter2 // >=2 selects global
	mask    uint64
}

// NewTournament returns a tournament predictor sized by bits (table index
// width shared by all components).
func NewTournament(bits int) *Tournament {
	ch := make([]counter2, 1<<bits)
	for i := range ch {
		ch[i] = 2
	}
	return &Tournament{
		global:  NewGshare(bits, bits),
		local:   NewTwoLevelLocal(bits-1, 12),
		chooser: ch,
		mask:    uint64(1<<bits - 1),
	}
}

// Name implements Predictor.
func (t *Tournament) Name() string { return "tournament" }

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64) bool {
	if t.chooser[(pc>>2)&t.mask].taken() {
		return t.global.Predict(pc)
	}
	return t.local.Predict(pc)
}

// Update implements Predictor.
func (t *Tournament) Update(pc uint64, taken bool) {
	g := t.global.Predict(pc)
	l := t.local.Predict(pc)
	if g != l {
		i := (pc >> 2) & t.mask
		t.chooser[i] = t.chooser[i].update(g == taken)
	}
	t.global.Update(pc, taken)
	t.local.Update(pc, taken)
}

// Perceptron is the perceptron predictor of Jiménez & Lin (HPCA 2001):
// per-PC weight vectors dotted with global history.
type Perceptron struct {
	weights [][]int8
	mask    uint64
	history []int8 // +1 taken, -1 not taken
	theta   int32
}

// NewPerceptron returns a perceptron predictor with 2^tableBits
// perceptrons over histLen bits of history.
func NewPerceptron(tableBits, histLen int) *Perceptron {
	ws := make([][]int8, 1<<tableBits)
	for i := range ws {
		ws[i] = make([]int8, histLen+1) // +1 for bias weight
	}
	return &Perceptron{
		weights: ws,
		mask:    uint64(1<<tableBits - 1),
		history: make([]int8, histLen),
		theta:   int32(1.93*float64(histLen) + 14),
	}
}

// Name implements Predictor.
func (p *Perceptron) Name() string { return "perceptron" }

func (p *Perceptron) output(pc uint64) int32 {
	w := p.weights[(pc>>2)&p.mask]
	y := int32(w[0])
	for i, h := range p.history {
		y += int32(w[i+1]) * int32(h)
	}
	return y
}

// Predict implements Predictor.
func (p *Perceptron) Predict(pc uint64) bool { return p.output(pc) >= 0 }

// Update implements Predictor.
func (p *Perceptron) Update(pc uint64, taken bool) {
	y := p.output(pc)
	pred := y >= 0
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if pred != taken || mag <= p.theta {
		w := p.weights[(pc>>2)&p.mask]
		t := int8(-1)
		if taken {
			t = 1
		}
		w[0] = satAdd8(w[0], t)
		for i, h := range p.history {
			w[i+1] = satAdd8(w[i+1], t*h)
		}
	}
	copy(p.history, p.history[1:])
	if taken {
		p.history[len(p.history)-1] = 1
	} else {
		p.history[len(p.history)-1] = -1
	}
}

func satAdd8(a, b int8) int8 {
	s := int16(a) + int16(b)
	if s > 127 {
		return 127
	}
	if s < -128 {
		return -128
	}
	return int8(s)
}

// Predictors returns one instance of every built-in direction predictor at
// its default size, for sweeps and ablation benchmarks.
func Predictors() []Predictor {
	return []Predictor{
		Static{},
		NewBimodal(14),
		NewGshare(14, 12),
		NewTwoLevelLocal(10, 12),
		NewTournament(13),
		NewPerceptron(10, 24),
		NewTAGE(11, nil),
	}
}

// Stats accumulates prediction outcomes per branch class.
type Stats struct {
	// Executed counts branches seen, indexed by trace.BranchClass.
	Executed [trace.NumBranchClasses + 1]uint64
	// Mispredicted counts direction or target mispredicts per class.
	Mispredicted [trace.NumBranchClasses + 1]uint64
}

// Total returns total branches and total mispredicts.
func (s *Stats) Total() (executed, mispredicted uint64) {
	for c := 1; c <= trace.NumBranchClasses; c++ {
		executed += s.Executed[c]
		mispredicted += s.Mispredicted[c]
	}
	return executed, mispredicted
}

// MispredictRate returns mispredicted/executed over all classes, or 0.
func (s *Stats) MispredictRate() float64 {
	e, m := s.Total()
	if e == 0 {
		return 0
	}
	return float64(m) / float64(e)
}

// Unit is a complete branch unit: direction predictor, branch target
// buffer and return-address stack.
type Unit struct {
	dir   Predictor
	btb   *BTB
	ras   *RAS
	stats Stats
}

// NewUnit assembles a branch unit around the given direction predictor.
func NewUnit(dir Predictor, btbBits, rasDepth int) *Unit {
	return &Unit{dir: dir, btb: NewBTB(btbBits), ras: NewRAS(rasDepth)}
}

// Stats returns the accumulated statistics.
func (u *Unit) Stats() Stats { return u.stats }

// Direction returns the unit's direction predictor.
func (u *Unit) Direction() Predictor { return u.dir }

// Resolve processes one branch uop: predicts, compares with the resolved
// outcome, trains, and reports whether the branch was mispredicted.
func (u *Unit) Resolve(up *trace.Uop) bool {
	cls := up.Branch
	u.stats.Executed[cls]++
	misp := false
	switch cls {
	case trace.BranchConditional:
		// Direction prediction only: conditional targets are direct and
		// decode early, so a BTB miss costs a fetch bubble, not a flush.
		pred := u.dir.Predict(up.PC)
		misp = pred != up.Taken
		u.dir.Update(up.PC, up.Taken)
		if up.Taken {
			u.btb.Update(up.PC, up.Target)
		}
	case trace.BranchDirectJump:
		// Direct targets decode early; treat as always predicted.
	case trace.BranchDirectCall:
		u.ras.Push(up.PC + 4)
	case trace.BranchReturn:
		misp = u.ras.Pop() != up.Target
	case trace.BranchIndirectJump:
		misp = !u.btb.Hit(up.PC, up.Target)
		u.btb.Update(up.PC, up.Target)
	}
	if misp {
		u.stats.Mispredicted[cls]++
	}
	return misp
}

// BTB is a direct-mapped branch target buffer.
type BTB struct {
	pcs     []uint64
	targets []uint64
	mask    uint64
}

// NewBTB returns a BTB with 2^bits entries.
func NewBTB(bits int) *BTB {
	size := 1 << bits
	return &BTB{
		pcs:     make([]uint64, size),
		targets: make([]uint64, size),
		mask:    uint64(size - 1),
	}
}

func (b *BTB) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Hit reports whether the BTB holds the correct target for pc.
func (b *BTB) Hit(pc, target uint64) bool {
	i := b.index(pc)
	return b.pcs[i] == pc && b.targets[i] == target
}

// Update installs the resolved target for pc.
func (b *BTB) Update(pc, target uint64) {
	i := b.index(pc)
	b.pcs[i] = pc
	b.targets[i] = target
}

// RAS is a fixed-depth return address stack with wraparound (overflow
// silently overwrites the oldest entry, as in hardware).
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS returns a return-address stack with the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint64, depth), depth: depth}
}

// Push records a return address.
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % r.depth
	r.stack[r.top] = addr
}

// Pop returns the most recently pushed address (0 when empty/corrupt).
func (r *RAS) Pop() uint64 {
	v := r.stack[r.top]
	r.stack[r.top] = 0
	r.top = (r.top - 1 + r.depth) % r.depth
	return v
}

// ResetStats zeroes the unit's statistics while keeping predictor state
// warm, for discarding a warmup window.
func (u *Unit) ResetStats() { u.stats = Stats{} }

// Warm applies one branch record's state transitions — direction
// training, BTB fill, RAS push/pop — without predicting or counting.
// Sampled runs feed it the branch records inside fast-forward gaps
// (functional warming): predictor state is large and phase-sensitive,
// so freezing it across a gap leaves every history-indexed entry
// trained on a stale phase of its site, a bias no affordable warmup
// window can retrain away.
func (u *Unit) Warm(up *trace.Uop) {
	switch up.Branch {
	case trace.BranchConditional:
		u.dir.Update(up.PC, up.Taken)
		if up.Taken {
			u.btb.Update(up.PC, up.Target)
		}
	case trace.BranchDirectCall:
		u.ras.Push(up.PC + 4)
	case trace.BranchReturn:
		u.ras.Pop()
	case trace.BranchIndirectJump:
		u.btb.Update(up.PC, up.Target)
	}
}
