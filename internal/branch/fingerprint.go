package branch

import (
	"fmt"
	"strings"
)

// Fingerprinter is an optional interface for predictors whose Name does
// not carry every parameter that affects behaviour. The machine
// configuration fingerprint — and therefore the campaign result cache
// key — prefers Fingerprint over Name, so two predictors sharing a name
// but sized differently can never alias to the same cached result. All
// built-in predictors implement it.
type Fingerprinter interface {
	// Fingerprint returns a string covering the predictor's name and
	// every behaviour-affecting constructor parameter.
	Fingerprint() string
}

func log2len(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Fingerprint implements Fingerprinter.
func (Static) Fingerprint() string { return "static-taken" }

// Fingerprint implements Fingerprinter.
func (b *Bimodal) Fingerprint() string {
	return fmt.Sprintf("bimodal:%d", log2len(len(b.table)))
}

// Fingerprint implements Fingerprinter.
func (g *Gshare) Fingerprint() string {
	return fmt.Sprintf("gshare:%d:%d", log2len(len(g.table)), g.histLen)
}

// Fingerprint implements Fingerprinter.
func (l *TwoLevelLocal) Fingerprint() string {
	return fmt.Sprintf("two-level-local:%d:%d", log2len(len(l.histories)), l.histLen)
}

// Fingerprint implements Fingerprinter.
func (t *Tournament) Fingerprint() string {
	return fmt.Sprintf("tournament:%d[%s,%s]",
		log2len(len(t.chooser)), t.global.Fingerprint(), t.local.Fingerprint())
}

// Fingerprint implements Fingerprinter.
func (p *Perceptron) Fingerprint() string {
	return fmt.Sprintf("perceptron:%d:%d", log2len(len(p.weights)), len(p.history))
}

// Fingerprint implements Fingerprinter.
func (t *TAGE) Fingerprint() string {
	var hl strings.Builder
	for i, h := range t.histLens {
		if i > 0 {
			hl.WriteByte(',')
		}
		fmt.Fprintf(&hl, "%d", h)
	}
	bits := 0
	if len(t.tables) > 0 {
		bits = log2len(len(t.tables[0].ctr))
	}
	return fmt.Sprintf("tage:%d:%s[%s]", bits, hl.String(), t.base.Fingerprint())
}
