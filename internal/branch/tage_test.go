package branch

import (
	"testing"

	"repro/internal/xrand"
)

func newTestTAGE() *TAGE { return NewTAGE(10, nil) }

func TestTAGELearnsBias(t *testing.T) {
	for _, taken := range []bool{true, false} {
		p := newTestTAGE()
		outcome := func(int) bool { return taken }
		if rate := trainAndMeasure(p, outcome, 2000); rate > 0.02 {
			t.Errorf("tage mispredict %v on constant-%v stream", rate, taken)
		}
	}
}

func TestTAGELearnsAlternating(t *testing.T) {
	rate := trainAndMeasure(newTestTAGE(), func(i int) bool { return i%2 == 0 }, 4000)
	if rate > 0.02 {
		t.Errorf("tage mispredict %v on alternating pattern", rate)
	}
}

func TestTAGELearnsLongPeriod(t *testing.T) {
	// Period-24 pattern exceeds gshare(12)'s history but fits TAGE's
	// longer tables.
	pattern := make([]bool, 24)
	rng := xrand.NewPCG32(3)
	for i := range pattern {
		pattern[i] = rng.Bool(0.5)
	}
	rate := trainAndMeasure(newTestTAGE(), func(i int) bool { return pattern[i%24] }, 20000)
	if rate > 0.08 {
		t.Errorf("tage mispredict %v on period-24 pattern, want ~0", rate)
	}
}

func TestTAGEBeatsGshareOnLongRuns(t *testing.T) {
	// A loop of 30 taken iterations then 18 not-taken: every 12-bit
	// history window deep inside a run is uniform, so gshare cannot see
	// the exit coming; TAGE's long-history tables can.
	outcome := func(i int) bool { return i%48 < 30 }
	tageRate := trainAndMeasure(newTestTAGE(), outcome, 30000)
	gshareRate := trainAndMeasure(NewGshare(14, 12), outcome, 30000)
	if tageRate >= gshareRate {
		t.Errorf("tage %v not better than gshare %v on run-structured pattern", tageRate, gshareRate)
	}
	if tageRate > 0.02 {
		t.Errorf("tage mispredict %v on deterministic runs, want ~0", tageRate)
	}
}

func TestTAGERandomStreamNearHalf(t *testing.T) {
	rng := xrand.NewPCG32(11)
	outcomes := make([]bool, 6000)
	for i := range outcomes {
		outcomes[i] = rng.Bool(0.5)
	}
	rate := trainAndMeasure(newTestTAGE(), func(i int) bool { return outcomes[i] }, len(outcomes))
	if rate < 0.3 || rate > 0.7 {
		t.Errorf("tage mispredict %v on random stream, want ~0.5", rate)
	}
}

func TestTAGEMultipleBranches(t *testing.T) {
	// Two independent biased branches must not corrupt each other.
	p := newTestTAGE()
	misp := 0
	for i := 0; i < 4000; i++ {
		for pc, taken := range map[uint64]bool{0x1000: true, 0x2000: false} {
			if p.Predict(pc) != taken && i > 500 {
				misp++
			}
			p.Update(pc, taken)
		}
	}
	if rate := float64(misp) / 7000; rate > 0.02 {
		t.Errorf("tage interference rate %v", rate)
	}
}

func TestFoldedHistory(t *testing.T) {
	// Folding is stable and bounded by width.
	for _, width := range []uint{7, 10, 12} {
		v := foldedHistory(0xDEADBEEFCAFE, 44, width)
		if v >= 1<<width {
			t.Errorf("folded value %d exceeds width %d", v, width)
		}
		if foldedHistory(0xDEADBEEFCAFE, 44, width) != v {
			t.Error("folding not deterministic")
		}
	}
	if foldedHistory(0, 44, 10) != 0 {
		t.Error("zero history folds nonzero")
	}
	// Different histories fold differently (usually).
	if foldedHistory(0b1011, 4, 10) == foldedHistory(0b0100, 4, 10) {
		t.Error("distinct short histories collide")
	}
}

func TestSatAdd3Bounds(t *testing.T) {
	c := int8(0)
	for i := 0; i < 10; i++ {
		c = satAdd3(c, true)
	}
	if c != 3 {
		t.Errorf("saturated up to %d, want 3", c)
	}
	for i := 0; i < 20; i++ {
		c = satAdd3(c, false)
	}
	if c != -4 {
		t.Errorf("saturated down to %d, want -4", c)
	}
}

func TestTAGEInPredictorsListStyle(t *testing.T) {
	// TAGE satisfies the Predictor contract used by the machine.
	var p Predictor = newTestTAGE()
	if p.Name() != "tage" {
		t.Errorf("name = %s", p.Name())
	}
	p.Update(0x400000, true)
	_ = p.Predict(0x400000)
}

func BenchmarkTAGEResolve(b *testing.B) {
	p := newTestTAGE()
	rng := xrand.NewPCG32(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%64)*4)
		taken := rng.Bool(0.6)
		p.Predict(pc)
		p.Update(pc, taken)
	}
}
