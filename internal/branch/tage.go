package branch

// TAGE is a compact TAGE predictor (Seznec & Michaud, JILP 2006): a
// bimodal base predictor plus several partially-tagged tables indexed by
// geometrically growing global-history lengths. The longest-history
// tagged hit provides the prediction; allocation on mispredicts steals
// weakly-held entries in longer tables.
type TAGE struct {
	base *Bimodal
	// tables[t] uses history length histLens[t].
	tables   []tageTable
	histLens []uint
	history  uint64 // newest outcome in bit 0

	// useAlt is a simple confidence counter for preferring the alternate
	// prediction when the provider entry is weak (newly allocated).
	useAlt counter2
}

type tageTable struct {
	tags []uint16
	ctr  []int8 // signed 3-bit counter: >=0 predicts taken
	use  []uint8
	mask uint64
}

// NewTAGE returns a TAGE predictor with 2^tableBits entries per tagged
// table and the given geometric history lengths (default 4 tables of
// 5/15/44/130 bits when histLens is nil).
func NewTAGE(tableBits int, histLens []uint) *TAGE {
	if histLens == nil {
		histLens = []uint{5, 15, 44, 64}
	}
	t := &TAGE{
		base:     NewBimodal(13),
		histLens: histLens,
	}
	size := 1 << tableBits
	for range histLens {
		t.tables = append(t.tables, tageTable{
			tags: make([]uint16, size),
			ctr:  make([]int8, size),
			use:  make([]uint8, size),
			mask: uint64(size - 1),
		})
	}
	return t
}

// Name implements Predictor.
func (t *TAGE) Name() string { return "tage" }

// foldedHistory compresses the low histLen bits of history into width
// bits by XOR folding.
func foldedHistory(history uint64, histLen, width uint) uint64 {
	h := history
	if histLen < 64 {
		h &= (1 << histLen) - 1
	}
	folded := uint64(0)
	for h != 0 {
		folded ^= h & ((1 << width) - 1)
		h >>= width
	}
	return folded
}

func (t *TAGE) index(table int, pc uint64) uint64 {
	hl := t.histLens[table]
	return ((pc >> 2) ^ foldedHistory(t.history, hl, 12) ^ (foldedHistory(t.history, hl, 10) << 1)) & t.tables[table].mask
}

func (t *TAGE) tag(table int, pc uint64) uint16 {
	hl := t.histLens[table]
	return uint16(((pc >> 2) ^ foldedHistory(t.history, hl, 9) ^ (foldedHistory(t.history, hl, 7) << 2)) & 0x1FF)
}

// lookup finds the provider (longest matching table) and alternate
// predictions.
func (t *TAGE) lookup(pc uint64) (provider int, providerIdx uint64, pred, altPred bool) {
	provider = -1
	alt := -1
	var altIdx uint64
	for tb := len(t.tables) - 1; tb >= 0; tb-- {
		idx := t.index(tb, pc)
		if t.tables[tb].tags[idx] == t.tag(tb, pc) {
			if provider < 0 {
				provider, providerIdx = tb, idx
			} else if alt < 0 {
				alt, altIdx = tb, idx
			}
		}
	}
	basePred := t.base.Predict(pc)
	if provider < 0 {
		return -1, 0, basePred, basePred
	}
	pred = t.tables[provider].ctr[providerIdx] >= 0
	if alt >= 0 {
		altPred = t.tables[alt].ctr[altIdx] >= 0
	} else {
		altPred = basePred
	}
	// Newly allocated (weak, unuseful) entries defer to the alternate
	// prediction when the useAlt counter says alternates do better.
	weak := t.tables[provider].ctr[providerIdx] == 0 || t.tables[provider].ctr[providerIdx] == -1
	if weak && t.tables[provider].use[providerIdx] == 0 && t.useAlt.taken() {
		pred = altPred
	}
	return provider, providerIdx, pred, altPred
}

// Predict implements Predictor.
func (t *TAGE) Predict(pc uint64) bool {
	_, _, pred, _ := t.lookup(pc)
	return pred
}

// Update implements Predictor.
func (t *TAGE) Update(pc uint64, taken bool) {
	provider, providerIdx, pred, altPred := t.lookup(pc)
	if provider >= 0 {
		tbl := &t.tables[provider]
		tbl.ctr[providerIdx] = satAdd3(tbl.ctr[providerIdx], taken)
		if pred != altPred {
			if pred == taken && tbl.use[providerIdx] < 3 {
				tbl.use[providerIdx]++
			} else if pred != taken && tbl.use[providerIdx] > 0 {
				tbl.use[providerIdx]--
			}
			// Track whether alternates would have done better.
			t.useAlt = t.useAlt.update(altPred == taken && pred != taken)
		}
	} else {
		t.base.Update(pc, taken)
	}
	// Allocate into a longer table on a mispredict.
	if pred != taken && provider < len(t.tables)-1 {
		t.allocate(provider+1, pc, taken)
	}
	t.history = (t.history << 1) | boolBit(taken)
}

// allocate claims an unuseful entry in some table at or above start.
func (t *TAGE) allocate(start int, pc uint64, taken bool) {
	for tb := start; tb < len(t.tables); tb++ {
		idx := t.index(tb, pc)
		tbl := &t.tables[tb]
		if tbl.use[idx] == 0 {
			tbl.tags[idx] = t.tag(tb, pc)
			if taken {
				tbl.ctr[idx] = 0
			} else {
				tbl.ctr[idx] = -1
			}
			return
		}
		tbl.use[idx]--
	}
}

func satAdd3(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
