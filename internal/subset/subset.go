// Package subset implements the paper's Section V methodology for
// selecting a diverse, representative subset of a benchmark suite: PCA
// over the 20 microarchitecture-independent characteristics, retention of
// the leading components, agglomerative hierarchical clustering of the PC
// scores, per-cluster representative selection by minimum execution time,
// and Pareto-knee selection of the cluster count against total subset
// execution time.
package subset

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/stats"
)

// Options configure the subsetting methodology.
type Options struct {
	// Components fixes the number of retained PCs; 0 derives it from
	// VarianceTarget.
	Components int
	// VarianceTarget is the cumulative variance the retained PCs must
	// explain when Components is 0 (default 0.76, the paper's four-PC
	// coverage).
	VarianceTarget float64
	// Linkage selects the clustering linkage (the zero value is Ward).
	Linkage cluster.Linkage
	// MaxClusters bounds the Pareto search (default: number of pairs).
	MaxClusters int
	// SSEWeight scales the SSE axis in the Pareto-knee selection
	// (default 5: favour representativeness over raw time saving, which
	// matches the subset sizes the paper lands on).
	SSEWeight float64
}

func (o Options) withDefaults(n int) Options {
	if o.VarianceTarget == 0 {
		o.VarianceTarget = 0.76
	}
	if o.MaxClusters <= 0 || o.MaxClusters > n {
		o.MaxClusters = n
	}
	if o.SSEWeight == 0 {
		o.SSEWeight = 5
	}
	return o
}

// Representative is one selected application-input pair.
type Representative struct {
	// Name is the pair name.
	Name string
	// Cluster is its cluster index.
	Cluster int
	// ExecSeconds is the pair's modeled execution time.
	ExecSeconds float64
	// ClusterSize is how many pairs the representative stands for.
	ClusterSize int
}

// Result is the outcome of the subsetting methodology on one pair set.
type Result struct {
	// PCA is the analysis over the Table VIII characteristics matrix.
	PCA *stats.PCA
	// Components is the number of retained PCs.
	Components int
	// VarianceExplained is their cumulative variance share.
	VarianceExplained float64
	// Dendrogram is the full merge history in PC space.
	Dendrogram *cluster.Dendrogram
	// Tradeoffs holds SSE and subset execution time for every candidate
	// cluster count (Fig. 10's two curves).
	Tradeoffs []cluster.Tradeoff
	// ChosenK is the Pareto-knee cluster count.
	ChosenK int
	// Representatives are the selected pairs at ChosenK, sorted by name.
	Representatives []Representative
	// TotalSeconds is the execution time of the full pair set.
	TotalSeconds float64
	// SubsetSeconds is the execution time of the representatives.
	SubsetSeconds float64
	// PairNames holds all pair names in matrix row order.
	PairNames []string
	// Scores is the retained-PC score matrix (pairs x Components).
	Scores *stats.Matrix
}

// Saving returns the fractional execution-time saving of the subset
// versus the full set (Table X's "% Saving").
func (r *Result) Saving() float64 {
	if r.TotalSeconds == 0 {
		return 0
	}
	return 1 - r.SubsetSeconds/r.TotalSeconds
}

// Compute runs the full methodology over a characterization run.
func Compute(chars []core.Characteristics, opt Options) (*Result, error) {
	if len(chars) < 2 {
		return nil, fmt.Errorf("subset: need at least 2 pairs, got %d", len(chars))
	}
	opt = opt.withDefaults(len(chars))
	matrix, names := core.PCAMatrix(chars)
	pca, err := stats.ComputePCA(matrix)
	if err != nil {
		return nil, err
	}
	k := opt.Components
	if k <= 0 {
		k = pca.ComponentsFor(opt.VarianceTarget)
	}
	if k > matrix.Cols() {
		k = matrix.Cols()
	}
	scores := pca.ScoresK(k)
	points := make([][]float64, scores.Rows())
	for i := range points {
		points[i] = scores.Row(i)
	}
	dend := cluster.Agglomerate(points, opt.Linkage)

	total := 0.0
	for i := range chars {
		total += chars[i].ExecSeconds
	}
	res := &Result{
		PCA:               pca,
		Components:        k,
		VarianceExplained: pca.VarianceExplained(k),
		Dendrogram:        dend,
		TotalSeconds:      total,
		PairNames:         names,
		Scores:            scores,
	}
	for kk := 1; kk <= opt.MaxClusters; kk++ {
		assign := dend.Cut(kk)
		reps := pickRepresentatives(chars, assign, kk)
		cost := 0.0
		for _, r := range reps {
			cost += r.ExecSeconds
		}
		res.Tradeoffs = append(res.Tradeoffs, cluster.Tradeoff{
			K: kk, SSE: cluster.SSE(points, assign), Cost: cost,
		})
	}
	knee := cluster.KneeWeighted(res.Tradeoffs, opt.SSEWeight)
	res.ChosenK = knee.K
	res.SubsetSeconds = knee.Cost
	assign := dend.Cut(res.ChosenK)
	res.Representatives = pickRepresentatives(chars, assign, res.ChosenK)
	return res, nil
}

// pickRepresentatives selects, per cluster, the pair with the shortest
// execution time (Section V-C), returning them sorted by name.
func pickRepresentatives(chars []core.Characteristics, assign []int, k int) []Representative {
	best := make([]int, k)
	sizes := make([]int, k)
	for i := range best {
		best[i] = -1
	}
	for i := range chars {
		c := assign[i]
		sizes[c]++
		if best[c] < 0 || chars[i].ExecSeconds < chars[best[c]].ExecSeconds {
			best[c] = i
		}
	}
	var reps []Representative
	for c, idx := range best {
		if idx < 0 {
			continue
		}
		reps = append(reps, Representative{
			Name:        chars[idx].Pair.Name(),
			Cluster:     c,
			ExecSeconds: chars[idx].ExecSeconds,
			ClusterSize: sizes[c],
		})
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].Name < reps[j].Name })
	return reps
}
