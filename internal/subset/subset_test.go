package subset

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/profile"
)

var rateCache []core.Characteristics

// rateChars characterizes the full rate suite (int + fp, ref inputs).
func rateChars(t *testing.T) []core.Characteristics {
	t.Helper()
	if rateCache != nil {
		return rateCache
	}
	var apps []*profile.Profile
	for _, p := range profile.CPU2017() {
		if p.Suite == profile.RateInt || p.Suite == profile.RateFP {
			apps = append(apps, p)
		}
	}
	chars, err := core.CharacterizeSuites(apps, profile.Ref, core.Options{Instructions: 60000})
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	rateCache = chars
	return chars
}

func TestComputeBasics(t *testing.T) {
	chars := rateChars(t)
	res, err := Compute(chars, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components < 2 || res.Components > 10 {
		t.Errorf("retained components = %d, expected a handful", res.Components)
	}
	if res.VarianceExplained < 0.76 || res.VarianceExplained > 1 {
		t.Errorf("variance explained = %v", res.VarianceExplained)
	}
	if res.ChosenK < 2 || res.ChosenK >= len(chars) {
		t.Errorf("chosen k = %d out of useful range", res.ChosenK)
	}
	if len(res.Representatives) != res.ChosenK {
		t.Errorf("%d representatives for k=%d", len(res.Representatives), res.ChosenK)
	}
	if res.SubsetSeconds >= res.TotalSeconds {
		t.Errorf("subset %.0fs not cheaper than full %.0fs", res.SubsetSeconds, res.TotalSeconds)
	}
}

// TestSavingInPaperBallpark: the paper reports ~57% execution-time saving
// for the rate suite subset; shape-wise we expect a substantial saving.
func TestSavingInPaperBallpark(t *testing.T) {
	res, err := Compute(rateChars(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Saving(); s < 0.30 || s > 0.95 {
		t.Errorf("saving = %.1f%%, want a substantial cut (paper: 57.1%%)", s*100)
	}
}

// TestRepresentativesAreClusterMinima: each representative has the
// shortest execution time within its cluster.
func TestRepresentativesAreClusterMinima(t *testing.T) {
	chars := rateChars(t)
	res, err := Compute(chars, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assign := res.Dendrogram.Cut(res.ChosenK)
	minTime := map[int]float64{}
	for i := range chars {
		c := assign[i]
		if v, ok := minTime[c]; !ok || chars[i].ExecSeconds < v {
			minTime[c] = chars[i].ExecSeconds
		}
	}
	for _, rep := range res.Representatives {
		if math.Abs(rep.ExecSeconds-minTime[rep.Cluster]) > 1e-9 {
			t.Errorf("representative %s (%.1fs) is not its cluster's minimum (%.1fs)",
				rep.Name, rep.ExecSeconds, minTime[rep.Cluster])
		}
	}
}

// TestClusterCoverage: every cluster has exactly one representative and
// cluster sizes sum to the pair count.
func TestClusterCoverage(t *testing.T) {
	chars := rateChars(t)
	res, err := Compute(chars, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	total := 0
	for _, rep := range res.Representatives {
		if seen[rep.Cluster] {
			t.Errorf("cluster %d has two representatives", rep.Cluster)
		}
		seen[rep.Cluster] = true
		total += rep.ClusterSize
	}
	if total != len(chars) {
		t.Errorf("cluster sizes sum to %d, want %d", total, len(chars))
	}
}

// TestTradeoffCurves: SSE falls and subset cost rises (weakly) with k.
func TestTradeoffCurves(t *testing.T) {
	res, err := Compute(rateChars(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tradeoffs) != len(rateChars(t)) {
		t.Fatalf("tradeoff points = %d", len(res.Tradeoffs))
	}
	for i := 1; i < len(res.Tradeoffs); i++ {
		if res.Tradeoffs[i].SSE > res.Tradeoffs[i-1].SSE+1e-9 {
			t.Errorf("SSE rose at k=%d", res.Tradeoffs[i].K)
		}
	}
	first, last := res.Tradeoffs[0], res.Tradeoffs[len(res.Tradeoffs)-1]
	if last.Cost <= first.Cost {
		t.Errorf("full-suite cost %.0f not above single-cluster cost %.0f", last.Cost, first.Cost)
	}
}

func TestFixedComponents(t *testing.T) {
	res, err := Compute(rateChars(t), Options{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 4 {
		t.Errorf("components = %d, want 4", res.Components)
	}
	if res.Scores.Cols() != 4 {
		t.Errorf("score columns = %d", res.Scores.Cols())
	}
}

func TestLinkageAblationStable(t *testing.T) {
	chars := rateChars(t)
	base, err := Compute(chars, Options{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range cluster.Linkages() {
		res, err := Compute(chars, Options{Components: 4, Linkage: l})
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if res.ChosenK < 2 {
			t.Errorf("%v: chose k=%d", l, res.ChosenK)
		}
		_ = base
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Compute(rateChars(t)[:1], Options{}); err == nil {
		t.Error("single pair accepted")
	}
}

// TestSimilarInputsCluster: multi-input pairs of the same application with
// low spread should sit in the same cluster at the chosen k (the paper's
// bwaves_s-in1/in2 validation, Table IX).
func TestSimilarInputsCluster(t *testing.T) {
	chars := rateChars(t)
	res, err := Compute(chars, Options{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	assign := res.Dendrogram.Cut(res.ChosenK)
	idx := map[string]int{}
	for i := range chars {
		idx[chars[i].Pair.Name()] = i
	}
	// bwaves_r has four near-identical inputs (spread 0.5): expect at
	// least in1 and in2 to co-cluster.
	a, okA := idx["503.bwaves_r-in1"]
	b, okB := idx["503.bwaves_r-in2"]
	if !okA || !okB {
		t.Fatal("bwaves pairs missing")
	}
	if assign[a] != assign[b] {
		t.Errorf("near-identical bwaves inputs split across clusters %d/%d", assign[a], assign[b])
	}
}
