// Package cliflags centralizes the campaign flags and end-of-run
// reporting shared by the speckit command-line tools (specchar,
// specsubset, specvalidate): the -progress meter, the -cache-dir
// persistent store, the -sampling fidelity knob, the -batch kernel
// knob, and the observability pair -trace (JSONL run manifest) and
// -slow-pair (per-pair latency warnings). Each tool embeds a Campaign,
// registers the flags, builds its campaign options from it, and calls
// Finish once the campaign completes.
//
// The package is deliberately built on the public speckit API — the
// tools exercise the same consolidated surface library users get.
package cliflags

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	speckit "repro"
)

// Campaign holds the shared campaign flags. The zero value is usable
// directly (tests construct it as a literal); Register wires the same
// fields to command-line flags.
type Campaign struct {
	// Progress enables the live stderr progress meter and the final
	// tiered cache-stats line (-progress).
	Progress bool
	// CacheDir is the persistent result-store directory (-cache-dir,
	// empty = in-memory cache only).
	CacheDir string
	// Sampling is the raw systematic-sampling knob (-sampling); empty
	// means "off".
	Sampling string
	// Fidelity is the raw simulation-tier selector (-fidelity); empty
	// means "exact".
	Fidelity string
	// Batch is the simulation kernel batch size in uops (-batch, 0 =
	// default).
	Batch int
	// Parallelism bounds concurrent pair simulations (-j, 0 = NumCPU).
	Parallelism int
	// PairWorkers splits each pair's measured stream into that many
	// concurrently simulated windows (-j-pair, <=1 = sequential kernel).
	PairWorkers int
	// Rate is the rate-mode copy count (-rate, <=1 = single copy).
	Rate int
	// Topo is the raw heterogeneous-topology selector (-topo); empty
	// means homogeneous.
	Topo string
	// Scenario is the raw consolidated scenario selector (-scenario);
	// when non-empty it replaces the individual scenario knobs
	// (-sampling, -fidelity, -j-pair, -rate, -topo), which must then
	// stay at their defaults.
	Scenario string
	// TraceFile, when set, records the campaign's span tree and writes
	// it there as a JSONL run manifest (-trace).
	TraceFile string
	// SlowPair, when positive, warns on stderr about any pair whose
	// wall time exceeded it (-slow-pair). Implies span recording even
	// without -trace.
	SlowPair time.Duration

	// State captured by Options for Finish.
	cache    *speckit.Cache
	trace    *speckit.Trace
	scenario speckit.Scenario
}

// Register installs the shared flags on fs (flag.CommandLine in the
// tools' main).
func (c *Campaign) Register(fs *flag.FlagSet) {
	if c.Sampling == "" {
		c.Sampling = "off"
	}
	if c.Fidelity == "" {
		c.Fidelity = "exact"
	}
	fs.BoolVar(&c.Progress, "progress", c.Progress, "print a live progress meter (with per-tier cache hits) to stderr")
	fs.StringVar(&c.CacheDir, "cache-dir", c.CacheDir, "persistent result-store directory: pair results are saved as checksummed content-addressed records, and repeated runs with the same models, machine and options are re-used bit-identically instead of re-simulated (empty = in-memory cache only)")
	fs.StringVar(&c.Sampling, "sampling", c.Sampling, "systematic-sampling fidelity knob: off, default, or PERIOD/DETAIL/WARMUP instruction counts (e.g. 262144/8192/8192); sampled results are bounded-error estimates and never share cache entries with exact runs")
	fs.StringVar(&c.Fidelity, "fidelity", c.Fidelity, "simulation tier: exact (every uop), sampled (periodic detailed windows; same as -sampling default), or analytic (miss-curve prediction from a reuse-distance profile — the fastest tier); non-exact results are bounded-error estimates and never share cache entries across tiers")
	fs.IntVar(&c.Batch, "batch", c.Batch, "simulation kernel batch size in uops (0 = default; results are batch-size independent)")
	fs.IntVar(&c.Parallelism, "j", c.Parallelism, "concurrent pair simulations (0 = NumCPU)")
	fs.IntVar(&c.PairWorkers, "j-pair", c.PairWorkers, "intra-pair parallelism: split each pair's measured stream into N windows simulated concurrently and stitched with frozen-cache warm state (exact tier only; other tiers ignore it); results are tolerance-gated estimates of the sequential run, bit-reproducible for a fixed N and cached under separate keys (<=1 = sequential kernel)")
	fs.IntVar(&c.Rate, "rate", c.Rate, "rate-mode copy count: characterize each pair as N co-running copies with private L1/L2 contending on one shared inclusive L3, reporting per-copy and aggregate throughput plus shared-level contention stats (exact tier only; cached under separate keys; <=1 = single copy)")
	fs.StringVar(&c.Topo, "topo", c.Topo, "heterogeneous topology, e.g. 4P4E-random: run each pair on a P-core/E-core machine under the given OS-placement policy (pinned-p, pinned-e, random, best, worst); random placement yields a runtime distribution (exact tier only; cached under separate keys; empty = homogeneous)")
	fs.StringVar(&c.Scenario, "scenario", c.Scenario, "consolidated measurement scenario, comma-separated tokens: a fidelity tier (exact, sampled, analytic), sampling=PERIOD/DETAIL/WARMUP, j-pair=N, rate=N, topo=4P4E-random; replaces -sampling, -fidelity, -j-pair, -rate and -topo, which must then stay unset")
	fs.StringVar(&c.TraceFile, "trace", c.TraceFile, "write the campaign's span tree (campaign -> pair -> simulation stages, with cache-tier outcomes) to FILE as a JSONL run manifest; never affects results or cache identity")
	fs.DurationVar(&c.SlowPair, "slow-pair", c.SlowPair, "warn on stderr about pairs slower than this wall-time threshold (e.g. 2s; 0 = off)")
}

// Options builds the campaign options the flags describe: the parsed
// sampling knob, a fresh shared cache, the optional persistent store,
// the progress meter, and a run trace when -trace or -slow-pair asks
// for one.
func (c *Campaign) Options(ctx context.Context) (speckit.Options, error) {
	scenario, err := c.resolveScenario()
	if err != nil {
		return speckit.Options{}, err
	}
	c.scenario = scenario
	c.cache = speckit.NewCache()
	opts := []speckit.Option{
		speckit.WithContext(ctx),
		speckit.WithCache(c.cache),
		speckit.WithScenario(scenario),
		speckit.WithBatchSize(c.Batch),
		speckit.WithParallelism(c.Parallelism),
	}
	if c.Progress {
		opts = append(opts, speckit.WithProgress(speckit.ProgressPrinter(os.Stderr)))
	}
	if c.CacheDir != "" {
		st, err := speckit.OpenStore(c.CacheDir)
		if err != nil {
			return speckit.Options{}, err
		}
		opts = append(opts, speckit.WithStore(st))
	}
	if c.TraceFile != "" || c.SlowPair > 0 {
		c.trace = speckit.NewTrace()
		opts = append(opts, speckit.WithTrace(c.trace))
	}
	return speckit.NewOptions(opts...), nil
}

// resolveScenario folds the scenario flags into one speckit.Scenario:
// -scenario when set (the individual knobs must then stay at their
// defaults), otherwise the individual -sampling/-fidelity/-j-pair/
// -rate/-topo flags.
func (c *Campaign) resolveScenario() (speckit.Scenario, error) {
	if c.Scenario != "" {
		conflict := ""
		switch {
		case c.Sampling != "" && c.Sampling != "off":
			conflict = "-sampling"
		case c.Fidelity != "" && c.Fidelity != "exact":
			conflict = "-fidelity"
		case c.PairWorkers > 1:
			conflict = "-j-pair"
		case c.Rate > 1:
			conflict = "-rate"
		case c.Topo != "" && c.Topo != "off":
			conflict = "-topo"
		}
		if conflict != "" {
			return speckit.Scenario{}, fmt.Errorf("-scenario replaces %s; set the knob in the scenario string instead", conflict)
		}
		return ParseScenario(c.Scenario)
	}
	sampling, err := speckit.ParseSampling(c.Sampling)
	if err != nil {
		return speckit.Scenario{}, err
	}
	fidelity, err := speckit.ParseFidelity(c.Fidelity)
	if err != nil {
		return speckit.Scenario{}, err
	}
	if fidelity == speckit.FidelityAnalytic && sampling.Enabled() {
		return speckit.Scenario{}, fmt.Errorf("-fidelity analytic does not compose with -sampling")
	}
	topo, err := speckit.ParseTopology(c.Topo)
	if err != nil {
		return speckit.Scenario{}, err
	}
	s := speckit.Scenario{
		Fidelity:         fidelity,
		Sampling:         sampling,
		IntraPairWorkers: c.PairWorkers,
		RateCopies:       c.Rate,
		Topology:         topo,
	}
	return s, s.Validate()
}

// ParseScenario parses the -scenario flag syntax shared by the cmd
// tools and the server API: comma-separated tokens, each either a bare
// fidelity tier ("exact", "sampled", "analytic") or a key=value knob
// ("fidelity=sampled", "sampling=262144/8192/8192", "j-pair=8",
// "rate=4", "topo=4P4E-random"). The empty string is the default
// (exact, single-copy, homogeneous) scenario. The scenario's canonical
// String() round-trips through this parser.
func ParseScenario(s string) (speckit.Scenario, error) {
	var sc speckit.Scenario
	raw := strings.TrimSpace(s)
	if raw == "" {
		return sc, nil
	}
	for _, tok := range strings.Split(raw, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val := tok, ""
		if i := strings.IndexByte(tok, '='); i >= 0 {
			key, val = tok[:i], tok[i+1:]
		}
		var err error
		switch strings.ToLower(key) {
		case "exact", "sampled", "analytic":
			if val != "" {
				return speckit.Scenario{}, fmt.Errorf("scenario: tier token %q takes no value", tok)
			}
			sc.Fidelity, err = speckit.ParseFidelity(key)
		case "fidelity":
			sc.Fidelity, err = speckit.ParseFidelity(val)
		case "sampling":
			sc.Sampling, err = speckit.ParseSampling(val)
		case "j-pair", "jpair":
			sc.IntraPairWorkers, err = strconv.Atoi(val)
		case "rate":
			sc.RateCopies, err = strconv.Atoi(val)
		case "topo", "topology":
			sc.Topology, err = speckit.ParseTopology(val)
		default:
			return speckit.Scenario{}, fmt.Errorf("scenario: unknown knob %q (want a fidelity tier, sampling=, j-pair=, rate= or topo=)", key)
		}
		if err != nil {
			return speckit.Scenario{}, fmt.Errorf("scenario: %q: %v", tok, err)
		}
	}
	return sc, sc.Validate()
}

// ScenarioKnob returns the scenario resolved by Options (zero before
// then).
func (c *Campaign) ScenarioKnob() speckit.Scenario { return c.scenario }

// SamplingKnob returns the knob parsed by Options (zero before then).
func (c *Campaign) SamplingKnob() speckit.Sampling { return c.scenario.Sampling }

// FidelityTier returns the tier parsed by Options (exact before then).
func (c *Campaign) FidelityTier() speckit.Fidelity { return c.scenario.Fidelity }

// Finish completes the shared end-of-run reporting: the tiered
// cache-stats line under -progress, slow-pair warnings, and the JSONL
// run manifest (with its digest) for -trace. Call it once, after the
// campaign(s) built from Options have completed.
func (c *Campaign) Finish() error {
	if c.Progress && c.cache != nil {
		s := c.cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d memory hits, %d store hits, %d misses (%.0f%% hit rate)\n",
			s.MemoryHits, s.StoreHits, s.Misses, 100*s.HitRate())
	}
	if c.trace == nil {
		return nil
	}
	manifest, err := c.trace.Manifest()
	if err != nil {
		return fmt.Errorf("render run manifest: %w", err)
	}
	if c.SlowPair > 0 {
		if err := c.warnSlowPairs(manifest); err != nil {
			return err
		}
	}
	if c.TraceFile != "" {
		if err := os.WriteFile(c.TraceFile, manifest, 0o644); err != nil {
			return fmt.Errorf("write run manifest: %w", err)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (sha256 %s)\n",
			c.TraceFile, speckit.ManifestDigest(manifest))
	}
	return nil
}

// warnSlowPairs scans the manifest for pair spans (the spans carrying a
// cache-tier outcome) over the -slow-pair threshold.
func (c *Campaign) warnSlowPairs(manifest []byte) error {
	_, spans, err := speckit.ReadManifest(bytes.NewReader(manifest))
	if err != nil {
		return fmt.Errorf("scan run manifest: %w", err)
	}
	for _, s := range spans {
		tier, ok := s.Attrs["tier"]
		if !ok {
			continue
		}
		if d := time.Duration(s.DurUS) * time.Microsecond; d >= c.SlowPair {
			fmt.Fprintf(os.Stderr, "slow pair: %s took %s (tier %v, threshold %s)\n",
				s.Name, d.Round(time.Millisecond), tier, c.SlowPair)
		}
	}
	return nil
}

// SignalContext returns a context cancelled by SIGINT/SIGTERM — the
// tools' shared Ctrl-C path: the in-flight campaign aborts through the
// scheduler's context instead of the process dying mid-write.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
