package cliflags

import (
	"bytes"
	"context"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	speckit "repro"
)

func TestRegisterAndParse(t *testing.T) {
	var c Campaign
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	err := fs.Parse([]string{
		"-progress", "-cache-dir", "/tmp/x", "-sampling", "default",
		"-fidelity", "sampled",
		"-batch", "128", "-j", "2", "-j-pair", "8", "-trace", "run.jsonl", "-slow-pair", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Campaign{
		Progress: true, CacheDir: "/tmp/x", Sampling: "default", Fidelity: "sampled",
		Batch: 128, Parallelism: 2, PairWorkers: 8, TraceFile: "run.jsonl", SlowPair: 2 * time.Second,
	}
	if c != want {
		t.Errorf("parsed = %+v, want %+v", c, want)
	}

	// Defaults: sampling reads as "off", fidelity as "exact", everything
	// else zero.
	var d Campaign
	fs = flag.NewFlagSet("defaults", flag.ContinueOnError)
	d.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if d.Sampling != "off" || d.Fidelity != "exact" || d.Progress || d.TraceFile != "" || d.SlowPair != 0 {
		t.Errorf("defaults = %+v", d)
	}
}

func TestOptionsBadSampling(t *testing.T) {
	c := Campaign{Sampling: "not-a-knob"}
	if _, err := c.Options(context.Background()); err == nil {
		t.Fatal("bad sampling knob accepted")
	}
}

func TestOptionsFidelity(t *testing.T) {
	c := Campaign{Fidelity: "analytic"}
	opt, err := c.Options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Fidelity != speckit.FidelityAnalytic || c.FidelityTier() != speckit.FidelityAnalytic {
		t.Errorf("fidelity = %v (tier %v), want analytic", opt.Fidelity, c.FidelityTier())
	}

	if _, err := (&Campaign{Fidelity: "turbo"}).Options(context.Background()); err == nil {
		t.Error("bad fidelity tier accepted")
	}

	// -j-pair reaches the campaign options untranslated.
	pw := Campaign{PairWorkers: 8}
	popt, err := pw.Options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if popt.IntraPairWorkers != 8 {
		t.Errorf("IntraPairWorkers = %d, want 8", popt.IntraPairWorkers)
	}

	bad := Campaign{Fidelity: "analytic", Sampling: "default"}
	if _, err := bad.Options(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "analytic") {
		t.Errorf("analytic+sampling = %v, want rejection", err)
	}
}

func TestParseScenario(t *testing.T) {
	cases := []struct {
		in   string
		want speckit.Scenario
	}{
		{"", speckit.Scenario{}},
		{"exact", speckit.Scenario{}},
		{"sampled", speckit.Scenario{Fidelity: speckit.FidelitySampled}},
		{"analytic", speckit.Scenario{Fidelity: speckit.FidelityAnalytic}},
		{"sampling=131072/4096/4096", speckit.Scenario{
			Sampling: speckit.Sampling{Period: 131072, DetailLen: 4096, WarmupLen: 4096}}},
		{"j-pair=8", speckit.Scenario{IntraPairWorkers: 8}},
		{"rate=4", speckit.Scenario{RateCopies: 4}},
		{"exact,rate=4,topo=4P4E-random", speckit.Scenario{
			RateCopies: 4,
			Topology:   speckit.Topology{PCores: 4, ECores: 4, Placement: speckit.PlaceRandom}}},
		{" Exact , Rate=2 ", speckit.Scenario{RateCopies: 2}},
	}
	for _, tc := range cases {
		got, err := ParseScenario(tc.in)
		if err != nil {
			t.Errorf("ParseScenario(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseScenario(%q) = %+v, want %+v", tc.in, got, tc.want)
			continue
		}
		// The canonical string round-trips through the parser.
		back, err := ParseScenario(got.String())
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q -> %+v (%v)", tc.in, got.String(), back, err)
		}
	}

	for _, in := range []string{
		"turbo",                              // unknown tier
		"exact=1",                            // tier tokens take no value
		"rate=x",                             // non-numeric knob
		"warp=9",                             // unknown knob
		"analytic,sampling=262144/8192/8192", // analytic rejects sampling
		"analytic,rate=4",                    // rate is exact-tier only
		"sampled,topo=4P4E-random",           // so is topology
		"topo=4X4E-random",                   // malformed topology
	} {
		if sc, err := ParseScenario(in); err == nil {
			t.Errorf("ParseScenario(%q) = %+v, want error", in, sc)
		}
	}
}

// TestScenarioFlagConflicts: -scenario replaces the individual knobs;
// setting both is an error naming the conflicting flag, never a silent
// merge.
func TestScenarioFlagConflicts(t *testing.T) {
	cases := []struct {
		c    Campaign
		flag string
	}{
		{Campaign{Scenario: "rate=4", Sampling: "default"}, "-sampling"},
		{Campaign{Scenario: "rate=4", Fidelity: "sampled"}, "-fidelity"},
		{Campaign{Scenario: "rate=4", PairWorkers: 8}, "-j-pair"},
		{Campaign{Scenario: "exact", Rate: 4}, "-rate"},
		{Campaign{Scenario: "exact", Topo: "4P4E-random"}, "-topo"},
	}
	for _, tc := range cases {
		_, err := tc.c.Options(context.Background())
		if err == nil || !strings.Contains(err.Error(), tc.flag) {
			t.Errorf("%+v: err = %v, want conflict naming %s", tc.c, err, tc.flag)
		}
	}

	// Default spellings of the individual flags do not conflict.
	ok := Campaign{Scenario: "rate=4,topo=4P4E-random", Sampling: "off", Fidelity: "exact"}
	opt, err := ok.Options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if opt.RateCopies != 4 || !opt.Topology.Enabled() {
		t.Errorf("scenario did not reach the options: %+v", opt)
	}
	if s := ok.ScenarioKnob().String(); s != "rate=4,topo=4P4E-random" {
		t.Errorf("ScenarioKnob = %q", s)
	}
}

// TestScenarioFlagEquivalence: a -scenario string and the individual
// flags it replaces resolve to identical campaign options — one
// scenario, one cache keyspace, regardless of spelling.
func TestScenarioFlagEquivalence(t *testing.T) {
	composed := Campaign{Scenario: "sampled,j-pair=4"}
	split := Campaign{Fidelity: "sampled", PairWorkers: 4}
	co, err := composed.Options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	so, err := split.Options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if composed.ScenarioKnob() != split.ScenarioKnob() {
		t.Errorf("scenarios differ: %+v vs %+v", composed.ScenarioKnob(), split.ScenarioKnob())
	}
	if co.Fidelity != so.Fidelity || co.Sampling != so.Sampling ||
		co.IntraPairWorkers != so.IntraPairWorkers ||
		co.RateCopies != so.RateCopies || co.Topology != so.Topology {
		t.Error("composed and split scenario flags derive different options")
	}
}

// captureStderr runs fn with os.Stderr redirected and returns what it
// wrote.
func captureStderr(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	ferr := fn()
	w.Close()
	os.Stderr = old
	out, _ := io.ReadAll(r)
	if ferr != nil {
		t.Fatalf("fn: %v (stderr: %s)", ferr, out)
	}
	return string(out)
}

// TestCampaignTraceAndFinish: a campaign run through the shared flags
// writes a valid manifest for -trace, warns about slow pairs, and
// prints the cache-stats line under -progress.
func TestCampaignTraceAndFinish(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "run.jsonl")
	c := Campaign{
		Progress:  true,
		TraceFile: traceFile,
		SlowPair:  time.Microsecond, // every simulated pair exceeds this
	}
	opt, err := c.Options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	opt.Instructions = 10000
	suite := speckit.CPU2017().Mini(speckit.RateInt)
	chars, err := speckit.Characterize(suite, speckit.Test, opt)
	if err != nil {
		t.Fatal(err)
	}

	out := captureStderr(t, c.Finish)
	if !strings.Contains(out, "cache: ") {
		t.Errorf("no cache-stats line in %q", out)
	}
	if got := strings.Count(out, "slow pair: "); got != len(chars) {
		t.Errorf("slow-pair warnings = %d, want %d\n%s", got, len(chars), out)
	}
	if !strings.Contains(out, "trace: wrote "+traceFile) {
		t.Errorf("no trace line in %q", out)
	}

	manifest, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	_, spans, err := speckit.ReadManifest(bytes.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	pairSpans := 0
	for _, s := range spans {
		if s.Attrs["tier"] != nil {
			pairSpans++
		}
	}
	if pairSpans != len(chars) {
		t.Errorf("manifest pair spans = %d, want %d", pairSpans, len(chars))
	}
	if !strings.Contains(out, speckit.ManifestDigest(manifest)) {
		t.Error("trace line does not report the manifest digest")
	}
}

// TestFinishWithoutTrace: with neither -trace nor -slow-pair, Finish
// only prints stats and never renders a manifest.
func TestFinishWithoutTrace(t *testing.T) {
	var c Campaign
	opt, err := c.Options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Trace != nil {
		t.Error("trace attached without -trace/-slow-pair")
	}
	out := captureStderr(t, c.Finish)
	if out != "" {
		t.Errorf("quiet Finish wrote %q", out)
	}
}
