package cliflags

import (
	"bytes"
	"context"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	speckit "repro"
)

func TestRegisterAndParse(t *testing.T) {
	var c Campaign
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	err := fs.Parse([]string{
		"-progress", "-cache-dir", "/tmp/x", "-sampling", "default",
		"-fidelity", "sampled",
		"-batch", "128", "-j", "2", "-j-pair", "8", "-trace", "run.jsonl", "-slow-pair", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Campaign{
		Progress: true, CacheDir: "/tmp/x", Sampling: "default", Fidelity: "sampled",
		Batch: 128, Parallelism: 2, PairWorkers: 8, TraceFile: "run.jsonl", SlowPair: 2 * time.Second,
	}
	if c != want {
		t.Errorf("parsed = %+v, want %+v", c, want)
	}

	// Defaults: sampling reads as "off", fidelity as "exact", everything
	// else zero.
	var d Campaign
	fs = flag.NewFlagSet("defaults", flag.ContinueOnError)
	d.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if d.Sampling != "off" || d.Fidelity != "exact" || d.Progress || d.TraceFile != "" || d.SlowPair != 0 {
		t.Errorf("defaults = %+v", d)
	}
}

func TestOptionsBadSampling(t *testing.T) {
	c := Campaign{Sampling: "not-a-knob"}
	if _, err := c.Options(context.Background()); err == nil {
		t.Fatal("bad sampling knob accepted")
	}
}

func TestOptionsFidelity(t *testing.T) {
	c := Campaign{Fidelity: "analytic"}
	opt, err := c.Options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Fidelity != speckit.FidelityAnalytic || c.FidelityTier() != speckit.FidelityAnalytic {
		t.Errorf("fidelity = %v (tier %v), want analytic", opt.Fidelity, c.FidelityTier())
	}

	if _, err := (&Campaign{Fidelity: "turbo"}).Options(context.Background()); err == nil {
		t.Error("bad fidelity tier accepted")
	}

	// -j-pair reaches the campaign options untranslated.
	pw := Campaign{PairWorkers: 8}
	popt, err := pw.Options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if popt.IntraPairWorkers != 8 {
		t.Errorf("IntraPairWorkers = %d, want 8", popt.IntraPairWorkers)
	}

	bad := Campaign{Fidelity: "analytic", Sampling: "default"}
	if _, err := bad.Options(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "analytic") {
		t.Errorf("analytic+sampling = %v, want rejection", err)
	}
}

// captureStderr runs fn with os.Stderr redirected and returns what it
// wrote.
func captureStderr(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	ferr := fn()
	w.Close()
	os.Stderr = old
	out, _ := io.ReadAll(r)
	if ferr != nil {
		t.Fatalf("fn: %v (stderr: %s)", ferr, out)
	}
	return string(out)
}

// TestCampaignTraceAndFinish: a campaign run through the shared flags
// writes a valid manifest for -trace, warns about slow pairs, and
// prints the cache-stats line under -progress.
func TestCampaignTraceAndFinish(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "run.jsonl")
	c := Campaign{
		Progress:  true,
		TraceFile: traceFile,
		SlowPair:  time.Microsecond, // every simulated pair exceeds this
	}
	opt, err := c.Options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	opt.Instructions = 10000
	suite := speckit.CPU2017().Mini(speckit.RateInt)
	chars, err := speckit.Characterize(suite, speckit.Test, opt)
	if err != nil {
		t.Fatal(err)
	}

	out := captureStderr(t, c.Finish)
	if !strings.Contains(out, "cache: ") {
		t.Errorf("no cache-stats line in %q", out)
	}
	if got := strings.Count(out, "slow pair: "); got != len(chars) {
		t.Errorf("slow-pair warnings = %d, want %d\n%s", got, len(chars), out)
	}
	if !strings.Contains(out, "trace: wrote "+traceFile) {
		t.Errorf("no trace line in %q", out)
	}

	manifest, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	_, spans, err := speckit.ReadManifest(bytes.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	pairSpans := 0
	for _, s := range spans {
		if s.Attrs["tier"] != nil {
			pairSpans++
		}
	}
	if pairSpans != len(chars) {
		t.Errorf("manifest pair spans = %d, want %d", pairSpans, len(chars))
	}
	if !strings.Contains(out, speckit.ManifestDigest(manifest)) {
		t.Error("trace line does not report the manifest digest")
	}
}

// TestFinishWithoutTrace: with neither -trace nor -slow-pair, Finish
// only prints stats and never renders a manifest.
func TestFinishWithoutTrace(t *testing.T) {
	var c Campaign
	opt, err := c.Options(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Trace != nil {
		t.Error("trace attached without -trace/-slow-pair")
	}
	out := captureStderr(t, c.Finish)
	if out != "" {
		t.Errorf("quiet Finish wrote %q", out)
	}
}
