// Package rdist measures reuse-distance profiles of address streams: for
// each memory reference, the number of distinct cache lines touched since
// the last reference to the same line (infinite for cold misses).
//
// Reuse-distance histograms are the microarchitecture-independent
// description of temporal locality: a fully-associative LRU cache of C
// lines hits exactly the references with distance < C. The profiler is
// used to validate the synthetic trace generator (its per-level pools
// must produce mass in the right distance bands) and as a standalone
// analysis tool for custom workloads.
//
// The implementation keeps an exact LRU stack in an order-statistic treap
// plus a line → stack-position lookup via a recency epoch map, giving
// O(log n) per reference.
package rdist

import (
	"fmt"
	"math"

	"repro/internal/ostree"
)

// Infinite marks a cold (first-touch) reference.
const Infinite = int(math.MaxInt32)

// Profiler computes exact reuse distances over a line-address stream.
type Profiler struct {
	lineBytes uint64
	stack     *ostree.Tree
	// epoch[line] is the monotonically decreasing insertion stamp of the
	// line's current stack node; rank lookup walks the treap by stamp.
	pos      map[uint64]uint64 // line -> stamp
	nextTick uint64
	hist     *Histogram
}

// NewProfiler returns a profiler for the given cache-line size (64 for
// the simulated machines). It panics on a non-power-of-two line size.
func NewProfiler(lineBytes int) *Profiler {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic("rdist: line size must be a positive power of two")
	}
	return &Profiler{
		lineBytes: uint64(lineBytes),
		stack:     ostree.New(0xd157),
		pos:       make(map[uint64]uint64),
		nextTick:  math.MaxUint64,
		hist:      NewHistogram(),
	}
}

// Touch records a reference to addr and returns its reuse distance
// (Infinite when cold).
func (p *Profiler) Touch(addr uint64) int {
	lineAddr := addr / p.lineBytes
	d := Infinite
	if stamp, ok := p.pos[lineAddr]; ok {
		if d = p.stack.RemoveValue(stamp); d < 0 {
			panic("rdist: stamp not found in stack")
		}
	}
	stamp := p.nextTick
	p.nextTick--
	p.stack.PushFront(stamp)
	p.pos[lineAddr] = stamp
	p.hist.Add(d)
	return d
}

// Preload warms a fresh profiler's LRU stack with an address stream in
// one bulk pass, leaving the stack and recency state exactly as if every
// address had been Touched in order — but records nothing in the
// histogram: the warmup's distances are an artifact of the cold start,
// not of the workload's steady state. It panics if the profiler has
// already seen references; Preload is a constructor-adjacent fast path,
// not a mid-stream operation.
func (p *Profiler) Preload(addrs []uint64) {
	if p.stack.Len() != 0 || p.nextTick != math.MaxUint64 {
		panic("rdist: Preload requires a fresh profiler")
	}
	// A line's stack stamp after the sequential replay would be
	// MaxUint64 - (index of its last occurrence); rank order is most
	// recent first, i.e. ascending stamps. Walking the stream backwards
	// meets each line at its last occurrence first, so the stamps come
	// out already in rank order — no sort.
	pos := make(map[uint64]uint64, len(addrs))
	values := make([]uint64, 0, len(addrs))
	for i := len(addrs) - 1; i >= 0; i-- {
		line := addrs[i] / p.lineBytes
		if _, ok := pos[line]; ok {
			continue
		}
		stamp := math.MaxUint64 - uint64(i)
		pos[line] = stamp
		values = append(values, stamp)
	}
	p.pos = pos
	p.stack = ostree.FromOrdered(0xd157, values)
	p.nextTick = math.MaxUint64 - uint64(len(addrs))
}

// Lines returns the number of distinct lines touched.
func (p *Profiler) Lines() int { return p.stack.Len() }

// Histogram returns the accumulated distance histogram.
func (p *Profiler) Histogram() *Histogram { return p.hist }

// ResetHistogram clears the accumulated histogram while keeping the LRU
// stack warm, so a bounded measurement window can follow a warmup phase
// without the warmup's references biasing the distribution.
func (p *Profiler) ResetHistogram() { p.hist.Reset() }

// Histogram accumulates reuse distances in power-of-two buckets plus a
// cold-reference count.
type Histogram struct {
	// buckets[i] counts distances in [2^(i-1), 2^i), with buckets[0]
	// counting distance 0.
	buckets []uint64
	cold    uint64
	total   uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]uint64, 33)}
}

// Add records one distance.
func (h *Histogram) Add(d int) {
	h.total++
	if d == Infinite {
		h.cold++
		return
	}
	h.buckets[bucketOf(d)]++
}

// Reset clears all recorded distances (buckets, cold and total counts).
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.cold = 0
	h.total = 0
}

func bucketOf(d int) int {
	if d <= 0 {
		return 0
	}
	// 64-bit shift: d can reach MaxInt32-1, whose bucket boundary 2^31
	// overflows a 32-bit int mid-comparison.
	b := 1
	for int64(1)<<uint(b) <= int64(d) {
		b++
	}
	return b
}

// Total returns the number of recorded references.
func (h *Histogram) Total() uint64 { return h.total }

// Cold returns the number of first-touch references.
func (h *Histogram) Cold() uint64 { return h.cold }

// MassBelow returns the fraction of warm references with distance < c.
// Bucket boundaries are conservative: partial buckets contribute
// proportionally under a uniform assumption.
func (h *Histogram) MassBelow(c int) float64 {
	warm := h.total - h.cold
	if warm == 0 || c <= 0 {
		return 0
	}
	var mass float64
	c64 := int64(c)
	for b, n := range h.buckets {
		lo, hi := bucketBounds(b)
		switch {
		case hi <= c64:
			mass += float64(n)
		case lo < c64:
			mass += float64(n) * float64(c64-lo) / float64(hi-lo)
		}
	}
	return mass / float64(warm)
}

// bucketBounds returns the [lo, hi) distance range of bucket b in 64-bit
// arithmetic: the top buckets' bounds (2^31, 2^32) overflow a 32-bit int.
func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 1
	}
	return int64(1) << uint(b-1), int64(1) << uint(b)
}

// HitRateAt estimates the hit rate of a fully-associative LRU cache of c
// lines over the recorded stream (cold references miss).
func (h *Histogram) HitRateAt(c int) float64 {
	if h.total == 0 {
		return 0
	}
	warm := float64(h.total - h.cold)
	return h.MassBelow(c) * warm / float64(h.total)
}

// Buckets returns the non-empty buckets as (lowBound, count) pairs in
// ascending distance order, for report rendering.
func (h *Histogram) Buckets() (bounds []int, counts []uint64) {
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, _ := bucketBounds(b)
		// Non-empty buckets are capped at b=31 (distances are < 2^31), so
		// lo = 2^30 at most and the narrowing is safe on 32-bit ints.
		bounds = append(bounds, int(lo))
		counts = append(counts, n)
	}
	return bounds, counts
}

// String renders a compact textual histogram.
func (h *Histogram) String() string {
	bounds, counts := h.Buckets()
	out := ""
	for i, lo := range bounds {
		out += fmt.Sprintf("%8d: %d\n", lo, counts[i])
	}
	out += fmt.Sprintf("    cold: %d\n", h.cold)
	return out
}

// Percentile returns the warm-reference distance at the given quantile
// (0 < q <= 1), using bucket lower bounds; -1 when there are no warm
// references.
func (h *Histogram) Percentile(q float64) int {
	warm := h.total - h.cold
	if warm == 0 {
		return -1
	}
	target := uint64(math.Ceil(q * float64(warm)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	bounds, counts := h.Buckets()
	for i := range bounds {
		cum += counts[i]
		if cum >= target {
			return bounds[i]
		}
	}
	return bounds[len(bounds)-1]
}

// Compare returns the total-variation distance between two histograms'
// warm-distance distributions (0 = identical, 1 = disjoint), a similarity
// measure for streams.
func Compare(a, b *Histogram) float64 {
	warmA := float64(a.total - a.cold)
	warmB := float64(b.total - b.cold)
	if warmA == 0 || warmB == 0 {
		if warmA == warmB {
			return 0
		}
		return 1
	}
	n := len(a.buckets)
	if len(b.buckets) > n {
		n = len(b.buckets)
	}
	tv := 0.0
	for i := 0; i < n; i++ {
		var pa, pb float64
		if i < len(a.buckets) {
			pa = float64(a.buckets[i]) / warmA
		}
		if i < len(b.buckets) {
			pb = float64(b.buckets[i]) / warmB
		}
		tv += math.Abs(pa - pb)
	}
	return tv / 2
}

// Profile runs a callback-driven address stream through a fresh profiler
// and returns its histogram — a convenience for analyzing generators.
func Profile(lineBytes int, n int, next func() (addr uint64, ok bool)) *Histogram {
	p := NewProfiler(lineBytes)
	for i := 0; i < n; i++ {
		addr, ok := next()
		if !ok {
			break
		}
		p.Touch(addr)
	}
	return p.Histogram()
}
