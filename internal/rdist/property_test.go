package rdist

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// randomHistogram fills a histogram with a seeded mixture of short,
// medium, huge and cold distances so every property test sees mass in
// the low buckets, the top finite bucket and the cold counter.
func randomHistogram(seed uint64) *Histogram {
	h := NewHistogram()
	rng := xrand.NewPCG32(seed)
	for i := 0; i < 2000; i++ {
		switch rng.Intn(4) {
		case 0:
			h.Add(rng.Intn(64))
		case 1:
			h.Add(rng.Intn(1 << 20))
		case 2:
			h.Add(Infinite - 1 - rng.Intn(1<<10)) // top finite bucket
		default:
			h.Add(Infinite)
		}
	}
	return h
}

// TestMassBelowMonotoneProperty: MassBelow is non-decreasing in the
// capacity for any histogram, across the whole capacity range up to and
// including Infinite.
func TestMassBelowMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		h := randomHistogram(seed)
		prev := -1.0
		for c := 1; c > 0 && c < Infinite; c *= 2 {
			m := h.MassBelow(c)
			if m < prev-1e-12 || m < 0 || m > 1+1e-12 {
				return false
			}
			prev = m
		}
		return h.MassBelow(Infinite) >= prev-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestHitRateBoundedProperty: HitRateAt stays inside [0, 1] for any
// histogram and any capacity, including 0, negative and Infinite.
func TestHitRateBoundedProperty(t *testing.T) {
	f := func(seed uint64, rawC int64) bool {
		h := randomHistogram(seed)
		caps := []int{0, -1, 1, 7, 1 << 20, Infinite - 1, Infinite,
			int(rawC % int64(Infinite))}
		for _, c := range caps {
			r := h.HitRateAt(c)
			if r < 0 || r > 1 || math.IsNaN(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPercentileWithinBucketBounds: every percentile is the lower bound
// of some non-empty bucket, percentiles are non-decreasing in q, and the
// mass strictly below the returned bound is < q (the quantile inversion
// property at bucket granularity).
func TestPercentileWithinBucketBounds(t *testing.T) {
	f := func(seed uint64) bool {
		h := randomHistogram(seed)
		bounds, _ := h.Buckets()
		isBound := map[int]bool{}
		for _, lo := range bounds {
			isBound[lo] = true
		}
		prev := -1
		for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			p := h.Percentile(q)
			if !isBound[p] || p < prev {
				return false
			}
			// The warm mass strictly below this bucket must not already
			// cover the quantile, else a lower bucket should have won.
			if p > 0 && h.MassBelow(p) >= q+1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestInfiniteBoundary pins the behaviour of the histogram at and around
// c == Infinite (MaxInt32): no 32-bit overflow in the bucket math, no
// off-by-one at the top bucket, and hit rate equal to the warm fraction.
func TestInfiniteBoundary(t *testing.T) {
	h := NewHistogram()
	const warm, cold = 900, 100
	for i := 0; i < warm; i++ {
		h.Add(Infinite - 1) // deepest possible finite distance
	}
	for i := 0; i < cold; i++ {
		h.Add(Infinite)
	}
	// The deepest finite distance lands in bucket 31 ([2^30, 2^31)),
	// never in the overflow-prone bucket 32.
	if b := bucketOf(Infinite - 1); b != 31 {
		t.Fatalf("bucketOf(Infinite-1) = %d, want 31", b)
	}
	// At c = Infinite the partial-bucket interpolation covers effectively
	// all of bucket 31: (c-2^30)/2^30 = 1 - 1/2^30.
	if m := h.MassBelow(Infinite); math.Abs(m-1) > 1e-6 {
		t.Errorf("MassBelow(Infinite) = %v, want ~1", m)
	}
	if r := h.HitRateAt(Infinite); math.Abs(r-float64(warm)/float64(warm+cold)) > 1e-6 {
		t.Errorf("HitRateAt(Infinite) = %v, want %v", r, float64(warm)/float64(warm+cold))
	}
	// Monotone through the huge-capacity range: 2^29 (below the mass),
	// 2^30 (bucket lower bound), Infinite-1, Infinite.
	caps := []int{1 << 29, 1 << 30, 1<<30 + 1, Infinite - 1, Infinite}
	prev := -1.0
	for _, c := range caps {
		m := h.MassBelow(c)
		if m < prev-1e-12 {
			t.Errorf("MassBelow(%d) = %v < MassBelow(prev) = %v", c, m, prev)
		}
		prev = m
	}
	// Below the top bucket there is no mass at all.
	if m := h.MassBelow(1 << 29); m != 0 {
		t.Errorf("MassBelow(2^29) = %v, want 0", m)
	}
}

// TestHistogramReset: Reset clears every counter and the histogram
// accumulates fresh distances afterwards.
func TestHistogramReset(t *testing.T) {
	p := NewProfiler(64)
	for i := 0; i < 100; i++ {
		p.Touch(uint64(i%10) * 64)
	}
	if p.Histogram().Total() != 100 {
		t.Fatalf("total = %d before reset", p.Histogram().Total())
	}
	p.ResetHistogram()
	h := p.Histogram()
	if h.Total() != 0 || h.Cold() != 0 {
		t.Fatalf("after reset total/cold = %d/%d", h.Total(), h.Cold())
	}
	if bounds, _ := h.Buckets(); len(bounds) != 0 {
		t.Fatalf("after reset buckets = %v", bounds)
	}
	// The stack stays warm: re-touching a pre-reset line is not cold.
	if d := p.Touch(0); d == Infinite {
		t.Error("pre-reset line came back cold; stack was not preserved")
	}
	if h.Total() != 1 || h.Cold() != 0 {
		t.Errorf("post-reset accumulation total/cold = %d/%d", h.Total(), h.Cold())
	}
}

// TestPreloadEquivalence: Preload leaves the profiler in exactly the
// state sequential Touch would (same LRU stack, same recency), verified
// by comparing every distance of a long follow-up stream; the warmup
// itself records nothing in the histogram.
func TestPreloadEquivalence(t *testing.T) {
	rng := xrand.NewPCG32(42)
	warmup := make([]uint64, 5000)
	for i := range warmup {
		warmup[i] = uint64(rng.Intn(800)) * 64 // repeats guaranteed
	}
	seq := NewProfiler(64)
	for _, a := range warmup {
		seq.Touch(a)
	}
	seq.ResetHistogram()

	bulk := NewProfiler(64)
	bulk.Preload(warmup)
	if h := bulk.Histogram(); h.Total() != 0 || h.Cold() != 0 {
		t.Fatalf("Preload recorded %d/%d histogram entries", h.Total(), h.Cold())
	}
	if seq.Lines() != bulk.Lines() {
		t.Fatalf("Lines: sequential %d vs preloaded %d", seq.Lines(), bulk.Lines())
	}
	// Identical distances over a follow-up stream that revisits warmup
	// lines and introduces fresh ones.
	for step := 0; step < 20000; step++ {
		addr := uint64(rng.Intn(1200)) * 64
		a, b := seq.Touch(addr), bulk.Touch(addr)
		if a != b {
			t.Fatalf("step %d addr %#x: sequential distance %d, preloaded %d", step, addr, a, b)
		}
	}
	if Compare(seq.Histogram(), bulk.Histogram()) != 0 {
		t.Error("follow-up histograms diverged")
	}
}

// TestPreloadPanicsWhenWarm: Preload is only valid on a fresh profiler.
func TestPreloadPanicsWhenWarm(t *testing.T) {
	p := NewProfiler(64)
	p.Touch(0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Preload after Touch")
		}
	}()
	p.Preload([]uint64{64})
}

// FuzzProfilerTouch feeds arbitrary address streams to the profiler and
// checks its core invariants: the LRU stack holds exactly the distinct
// lines touched, cold count equals distinct lines, and histogram totals
// match the reference count.
func FuzzProfilerTouch(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 1})
	seed := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], uint64(i)*64)
		seed = append(seed, w[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewProfiler(64)
		distinct := map[uint64]bool{}
		refs := 0
		for len(data) >= 8 {
			addr := binary.LittleEndian.Uint64(data[:8])
			data = data[8:]
			d := p.Touch(addr)
			line := addr / 64
			if d == Infinite && distinct[line] {
				t.Fatalf("line %d cold twice", line)
			}
			if d != Infinite && !distinct[line] {
				t.Fatalf("line %d warm on first touch (d=%d)", line, d)
			}
			if d != Infinite && (d < 0 || d >= len(distinct)) {
				t.Fatalf("distance %d out of range [0,%d)", d, len(distinct))
			}
			distinct[line] = true
			refs++
		}
		if p.Lines() != len(distinct) {
			t.Fatalf("stack holds %d lines, stream touched %d distinct", p.Lines(), len(distinct))
		}
		h := p.Histogram()
		if h.Total() != uint64(refs) || h.Cold() != uint64(len(distinct)) {
			t.Fatalf("total/cold = %d/%d, want %d/%d", h.Total(), h.Cold(), refs, len(distinct))
		}
	})
}
