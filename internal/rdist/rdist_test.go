package rdist

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func TestColdThenReuse(t *testing.T) {
	p := NewProfiler(64)
	if d := p.Touch(0x1000); d != Infinite {
		t.Fatalf("first touch distance = %d, want Infinite", d)
	}
	if d := p.Touch(0x1000); d != 0 {
		t.Fatalf("immediate reuse distance = %d, want 0", d)
	}
	if d := p.Touch(0x1020); d != 0 {
		t.Fatalf("same-line offset distance = %d, want 0", d)
	}
}

func TestDistanceCountsDistinctLines(t *testing.T) {
	p := NewProfiler(64)
	p.Touch(0)   // line 0
	p.Touch(64)  // line 1
	p.Touch(128) // line 2
	p.Touch(64)  // re-touch line 1: one distinct line (2) in between
	if d := p.Touch(0); d != 2 {
		t.Fatalf("distance = %d, want 2 (lines 2 and 1 touched since)", d)
	}
}

func TestRepeatTouchesDoNotInflate(t *testing.T) {
	p := NewProfiler(64)
	p.Touch(0)
	for i := 0; i < 10; i++ {
		p.Touch(64) // hammer one line
	}
	if d := p.Touch(0); d != 1 {
		t.Fatalf("distance = %d, want 1 (only one distinct line between)", d)
	}
}

func TestLines(t *testing.T) {
	p := NewProfiler(64)
	for i := 0; i < 10; i++ {
		p.Touch(uint64(i) * 64)
		p.Touch(uint64(i) * 64)
	}
	if got := p.Lines(); got != 10 {
		t.Errorf("Lines = %d, want 10", got)
	}
}

func TestPanicsOnBadLineSize(t *testing.T) {
	for _, n := range []int{0, -1, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("line size %d accepted", n)
				}
			}()
			NewProfiler(n)
		}()
	}
}

// referenceDistance is a brute-force O(n) reuse-distance oracle.
type referenceDistance struct {
	order []uint64 // most recent first
}

func (r *referenceDistance) touch(line uint64) int {
	d := Infinite
	for i, l := range r.order {
		if l == line {
			d = i
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.order = append([]uint64{line}, r.order...)
	return d
}

func TestAgainstBruteForce(t *testing.T) {
	p := NewProfiler(64)
	ref := &referenceDistance{}
	rng := xrand.NewPCG32(7)
	for i := 0; i < 5000; i++ {
		line := uint64(rng.Intn(200))
		got := p.Touch(line * 64)
		want := ref.touch(line)
		if got != want {
			t.Fatalf("step %d line %d: distance %d, oracle %d", i, line, got, want)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(1000)
	h.Add(Infinite)
	if h.Total() != 6 || h.Cold() != 1 {
		t.Fatalf("total/cold = %d/%d", h.Total(), h.Cold())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != len(counts) || len(bounds) == 0 {
		t.Fatal("bucket shape")
	}
	if bounds[0] != 0 || counts[0] != 1 {
		t.Errorf("bucket 0 = (%d,%d)", bounds[0], counts[0])
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1023: 10, 1024: 11}
	for d, want := range cases {
		if got := bucketOf(d); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestMassBelowMonotone(t *testing.T) {
	h := NewHistogram()
	rng := xrand.NewPCG32(3)
	for i := 0; i < 10000; i++ {
		h.Add(rng.Intn(5000))
	}
	prev := 0.0
	for c := 1; c <= 1<<14; c *= 2 {
		m := h.MassBelow(c)
		if m < prev-1e-12 {
			t.Fatalf("MassBelow not monotone at %d: %v < %v", c, m, prev)
		}
		prev = m
	}
	if math.Abs(prev-1) > 1e-9 {
		t.Errorf("MassBelow at max = %v, want 1", prev)
	}
}

func TestHitRateAt(t *testing.T) {
	h := NewHistogram()
	// 3 warm refs below 8, 1 above, 1 cold.
	h.Add(1)
	h.Add(2)
	h.Add(4)
	h.Add(100)
	h.Add(Infinite)
	got := h.HitRateAt(8)
	if math.Abs(got-0.6) > 1e-9 {
		t.Errorf("HitRateAt(8) = %v, want 0.6", got)
	}
}

func TestPercentile(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 90; i++ {
		h.Add(1)
	}
	for i := 0; i < 10; i++ {
		h.Add(1 << 10)
	}
	if got := h.Percentile(0.5); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := h.Percentile(0.99); got != 1<<10 {
		t.Errorf("p99 = %d, want 1024", got)
	}
	if got := NewHistogram().Percentile(0.5); got != -1 {
		t.Errorf("empty percentile = %d", got)
	}
}

func TestCompare(t *testing.T) {
	a := NewHistogram()
	b := NewHistogram()
	for i := 0; i < 100; i++ {
		a.Add(1)
		b.Add(1)
	}
	if got := Compare(a, b); got != 0 {
		t.Errorf("identical histograms distance = %v", got)
	}
	c := NewHistogram()
	for i := 0; i < 100; i++ {
		c.Add(1 << 20)
	}
	if got := Compare(a, c); math.Abs(got-1) > 1e-9 {
		t.Errorf("disjoint histograms distance = %v, want 1", got)
	}
	if got := Compare(NewHistogram(), NewHistogram()); got != 0 {
		t.Errorf("empty vs empty = %v", got)
	}
	if got := Compare(a, NewHistogram()); got != 1 {
		t.Errorf("warm vs empty = %v, want 1", got)
	}
}

// TestLRUConsistency: hit rate at capacity c equals the fraction of refs
// with distance < c (the LRU stack property), via the oracle-checked
// profiler on a synthetic loop.
func TestLRUConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.NewPCG32(seed)
		p := NewProfiler(64)
		hits8 := 0
		total := 0
		for i := 0; i < 3000; i++ {
			line := uint64(rng.Intn(30))
			d := p.Touch(line * 64)
			total++
			if d != Infinite && d < 8 {
				hits8++
			}
		}
		want := float64(hits8) / float64(total)
		got := p.Histogram().HitRateAt(8)
		// Bucketed histogram interpolates within [4,8); allow slack.
		return math.Abs(got-want) < 0.08
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestGeneratorBands: the synthetic generator's data stream has
// reuse-distance mass consistent with its miss-rate targets — the
// validation loop the profiler exists for.
func TestGeneratorBands(t *testing.T) {
	model := profile.Model{
		InstrBillions: 100, TargetIPC: 1.5,
		LoadPct: 25, StorePct: 9, BranchPct: 16,
		Mix:           profile.DefaultIntBranchMix(),
		MispredictPct: 3, L1MissPct: 6, L2MissPct: 40, L3MissPct: 15,
		RSSMiB: 256, VSZMiB: 300, MLP: 2, CodeKiB: 200, BranchSites: 1500,
		Threads: 1, Seed: 99,
	}
	geo := synth.Geometry{L1Lines: 512, L2Lines: 4096, L3Lines: 32768}
	g, err := synth.New(model, geo)
	if err != nil {
		t.Fatal(err)
	}
	// Profile from the very first reference (prologue included) so the
	// pools' steady-state reuses are warm to the profiler.
	p := NewProfiler(64)
	var u trace.Uop
	refs := 0
	for refs < 120000 {
		if !g.Next(&u) {
			t.Fatal("stream ended")
		}
		if u.IsMem() {
			p.Touch(u.Addr)
			refs++
		}
	}
	h := p.Histogram()
	// The hot pool dominates: most warm references reuse within the L1
	// capacity.
	l1Mass := h.MassBelow(geo.L1Lines)
	if l1Mass < 0.88 || l1Mass > 0.98 {
		t.Errorf("L1-range warm mass = %.3f, want ~0.94", l1Mass)
	}
	// The L2 pool contributes a distinct mid-range band: measurable mass
	// between the L1 and L2 capacities.
	l2Band := h.MassBelow(geo.L2Lines) - l1Mass
	if l2Band < 0.005 || l2Band > 0.08 {
		t.Errorf("L2 band warm mass = %.3f, want a few percent", l2Band)
	}
	// Deep pools produce references beyond the L2 capacity too.
	if deep := 1 - h.MassBelow(geo.L2Lines); deep <= 0 {
		t.Error("no warm mass beyond the L2 capacity")
	}
	// The streaming pool keeps generating cold references.
	if h.Cold() == 0 {
		t.Error("no cold references from the streaming pool")
	}
}

func BenchmarkTouch(b *testing.B) {
	p := NewProfiler(64)
	rng := xrand.NewPCG32(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Touch(uint64(rng.Intn(100000)) * 64)
	}
}

func TestProfileConvenience(t *testing.T) {
	addrs := []uint64{0, 64, 0, 64, 128}
	i := 0
	h := Profile(64, 10, func() (uint64, bool) {
		if i >= len(addrs) {
			return 0, false
		}
		a := addrs[i]
		i++
		return a, true
	})
	if h.Total() != 5 || h.Cold() != 3 {
		t.Errorf("total/cold = %d/%d, want 5/3", h.Total(), h.Cold())
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Add(3)
	h.Add(Infinite)
	s := h.String()
	if len(s) == 0 || s[len(s)-1] != '\n' {
		t.Error("bad string rendering")
	}
}
