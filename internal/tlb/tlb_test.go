package tlb

import (
	"testing"

	"repro/internal/xrand"
)

func TestColdWalkThenHit(t *testing.T) {
	tb := NewHaswell()
	if got := tb.Translate(0x1000); got != Walk {
		t.Fatalf("cold translate = %v, want Walk", got)
	}
	if got := tb.Translate(0x1FFF); got != HitL1 {
		t.Fatalf("same-page translate = %v, want HitL1", got)
	}
	if got := tb.Translate(0x2000); got != Walk {
		t.Fatalf("next-page translate = %v, want Walk", got)
	}
}

func TestSmallWorkingSetStaysInL1(t *testing.T) {
	tb := NewHaswell()
	// 32 pages fit in the 64-entry DTLB.
	for pass := 0; pass < 4; pass++ {
		for p := 0; p < 32; p++ {
			tb.Translate(uint64(p) << PageBits)
		}
	}
	st := tb.L1Stats()
	if st.Misses != 32 {
		t.Errorf("L1 misses = %d, want 32 (cold only)", st.Misses)
	}
}

func TestMediumWorkingSetHitsL2(t *testing.T) {
	tb := NewHaswell()
	// 512 pages overflow the 64-entry L1 but fit the 1024-entry STLB.
	for pass := 0; pass < 4; pass++ {
		for p := 0; p < 512; p++ {
			tb.Translate(uint64(p) << PageBits)
		}
	}
	if walks := tb.Walks(); walks != 512 {
		t.Errorf("walks = %d, want 512 (cold only)", walks)
	}
	if tb.L1Stats().Hits != 0 {
		// Sequential scan of 512 pages through a 16-set L1 thrashes it.
		t.Logf("L1 hits = %d (sequential thrash)", tb.L1Stats().Hits)
	}
}

func TestHugeWorkingSetWalks(t *testing.T) {
	tb := NewHaswell()
	rng := xrand.NewPCG32(9)
	walksBefore := tb.Walks()
	const n = 20000
	for i := 0; i < n; i++ {
		tb.Translate(uint64(rng.Intn(1<<20)) << PageBits)
	}
	rate := float64(tb.Walks()-walksBefore) / n
	if rate < 0.9 {
		t.Errorf("walk rate %v on 4 GB random working set, want ~1", rate)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid TLB config did not panic")
		}
	}()
	New(Config{Entries: 10, Ways: 3}, Config{Entries: 64, Ways: 4})
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate != 0")
	}
	s.Hits, s.Misses = 3, 1
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", got)
	}
}
