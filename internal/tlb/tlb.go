// Package tlb models a two-level translation lookaside buffer with 4 KB
// pages, matching the Haswell DTLB (64-entry, 4-way) backed by a unified
// STLB (1024-entry, 8-way).
package tlb

// Config describes one TLB level.
type Config struct {
	// Entries is the total entry count.
	Entries int
	// Ways is the associativity.
	Ways int
}

// Stats accumulates translation outcomes.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// MissRate returns Misses over total translations, or 0.
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// PageBits is log2 of the page size (4 KB pages).
const PageBits = 12

// level is one set-associative TLB array with LRU replacement.
type level struct {
	sets  int
	ways  int
	pages []uint64
	valid []bool
	ages  []uint64
	clock uint64
	stats Stats
}

func newLevel(cfg Config) *level {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("tlb: invalid level config")
	}
	n := cfg.Entries
	return &level{
		sets:  n / cfg.Ways,
		ways:  cfg.Ways,
		pages: make([]uint64, n),
		valid: make([]bool, n),
		ages:  make([]uint64, n),
	}
}

// access returns true on hit, filling on miss.
func (l *level) access(page uint64) bool {
	set := int(page % uint64(l.sets))
	base := set * l.ways
	l.clock++
	for w := 0; w < l.ways; w++ {
		if l.valid[base+w] && l.pages[base+w] == page {
			l.ages[base+w] = l.clock
			l.stats.Hits++
			return true
		}
	}
	l.stats.Misses++
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < l.ways; w++ {
		if !l.valid[base+w] {
			victim = w
			break
		}
		if l.ages[base+w] < oldest {
			victim, oldest = w, l.ages[base+w]
		}
	}
	l.pages[base+victim] = page
	l.valid[base+victim] = true
	l.ages[base+victim] = l.clock
	return false
}

// TLB is the two-level translation structure.
type TLB struct {
	l1 *level
	l2 *level
}

// Outcome reports where a translation was found.
type Outcome int

const (
	// HitL1 means the first-level TLB held the translation.
	HitL1 Outcome = iota
	// HitL2 means only the second-level TLB held it.
	HitL2
	// Walk means both levels missed and a page walk was required.
	Walk
)

// New returns a TLB with the given level configurations.
func New(l1, l2 Config) *TLB {
	return &TLB{l1: newLevel(l1), l2: newLevel(l2)}
}

// NewHaswell returns the paper machine's DTLB configuration.
func NewHaswell() *TLB {
	return New(Config{Entries: 64, Ways: 4}, Config{Entries: 1024, Ways: 8})
}

// Translate looks up the page containing addr, filling both levels on a
// walk, and reports where the translation was found.
func (t *TLB) Translate(addr uint64) Outcome {
	page := addr >> PageBits
	if t.l1.access(page) {
		return HitL1
	}
	if t.l2.access(page) {
		return HitL2
	}
	return Walk
}

// RecordL1Hits credits n first-level hits without probing the arrays or
// advancing the LRU clock. It exists for batched callers that have proven
// the translations would hit the entry most recently promoted in its set —
// e.g. the machine deduplicating consecutive same-page data accesses.
// Victim choice depends only on the relative order of entry ages, so
// skipping the redundant re-promotions cannot change any future
// replacement decision; the resulting statistics are bit-identical to
// performing the translations.
func (t *TLB) RecordL1Hits(n uint64) { t.l1.stats.Hits += n }

// L1Stats returns first-level statistics.
func (t *TLB) L1Stats() Stats { return t.l1.stats }

// L2Stats returns second-level statistics.
func (t *TLB) L2Stats() Stats { return t.l2.stats }

// Walks returns the number of page walks performed.
func (t *TLB) Walks() uint64 { return t.l2.stats.Misses }

// ResetStats zeroes the statistics while keeping translations warm.
func (t *TLB) ResetStats() {
	t.l1.stats = Stats{}
	t.l2.stats = Stats{}
}
