package sweep_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/sweep"
)

// testPairs returns two cheap application-input pairs from different
// applications (so core.Aggregate's per-app means see two apps).
func testPairs() []profile.Pair {
	apps := profile.CPU2017()
	return []profile.Pair{
		apps[0].Expand(profile.Test)[0],
		apps[2].Expand(profile.Test)[0],
	}
}

func testSpec(pairs []profile.Pair) sweep.Spec {
	return sweep.Spec{
		Axes: []sweep.Axis{
			{Param: "l3.size", Values: []int64{1 << 20, 2 << 20}},
			{Param: "l2.size", Values: []int64{128 << 10, 256 << 10}},
		},
		Pairs:    pairs,
		Screen:   machine.FidelityAnalytic,
		Escalate: machine.FidelitySampled,
		Metrics:  []string{"ipc", "l3_miss_pct"},
	}
}

func baseOptions() core.Options {
	return core.Options{Instructions: 20000, Parallelism: 2}
}

func TestExpandGrid(t *testing.T) {
	base := machine.HaswellScaled()
	axes := []sweep.Axis{
		{Param: "l3.size", Values: []int64{1 << 20, 2 << 20}},
		{Param: "l3.ways", Values: []int64{8, 16}},
	}
	points, err := sweep.Expand(base, axes)
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []string{
		"l3.size=1MiB,l3.ways=8",
		"l3.size=1MiB,l3.ways=16",
		"l3.size=2MiB,l3.ways=8",
		"l3.size=2MiB,l3.ways=16",
	}
	if len(points) != len(wantLabels) {
		t.Fatalf("expanded %d points, want %d", len(points), len(wantLabels))
	}
	for i, want := range wantLabels {
		pt := points[i]
		if pt.Label != want {
			t.Errorf("point %d label = %q, want %q", i, pt.Label, want)
		}
		if pt.Index != i {
			t.Errorf("point %d Index = %d", i, pt.Index)
		}
		if !strings.HasSuffix(pt.Config.Name, "@"+want) {
			t.Errorf("point %d config name %q lacks label suffix", i, pt.Config.Name)
		}
		if err := pt.Config.Validate(); err != nil {
			t.Errorf("point %d config invalid: %v", i, err)
		}
	}
	// Distinct points must own distinct cache keyspaces.
	seen := map[string]string{}
	for _, pt := range points {
		fp := pt.Config.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("points %q and %q share fingerprint %s", prev, pt.Label, fp)
		}
		seen[fp] = pt.Label
	}
	// Cost tracks swept capacity.
	if points[0].CostBytes >= points[2].CostBytes {
		t.Errorf("cost did not grow with l3.size: %d vs %d", points[0].CostBytes, points[2].CostBytes)
	}

	// Axis-free sweep is the single base point, unrenamed.
	single, err := sweep.Expand(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || single[0].Label != "base" || single[0].Config.Name != base.Name {
		t.Errorf("axis-free expansion = %+v", single)
	}

	// A point that fails machine validation names its label.
	_, err = sweep.Expand(base, []sweep.Axis{{Param: "line", Values: []int64{48}}})
	if err == nil || !strings.Contains(err.Error(), "line=48") {
		t.Errorf("invalid point error = %v, want label mention", err)
	}

	// Grids beyond MaxPoints are rejected up front.
	big := make([]int64, sweep.MaxPoints+1)
	for i := range big {
		big[i] = int64(i + 1)
	}
	if _, err := sweep.Expand(base, []sweep.Axis{{Param: "l3.ways", Values: big}}); err == nil {
		t.Error("oversized grid accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	pairs := testPairs()
	run := func(mutate func(*sweep.Spec)) error {
		s := testSpec(pairs)
		mutate(&s)
		_, err := sweep.Run(context.Background(), s, sweep.Options{Base: baseOptions()})
		return err
	}
	if err := run(func(s *sweep.Spec) { s.Pairs = nil }); err == nil {
		t.Error("empty pair list accepted")
	}
	if err := run(func(s *sweep.Spec) { s.Metrics = []string{"cpi"} }); err == nil ||
		!strings.Contains(err.Error(), "unknown metric") {
		t.Errorf("unknown metric error = %v", err)
	}
	if err := run(func(s *sweep.Spec) {
		s.Axes = append(s.Axes, sweep.Axis{Param: "l3.size", Values: []int64{4 << 20}})
	}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate axis error = %v", err)
	}
	if err := run(func(s *sweep.Spec) { s.Axes[0].Values = nil }); err == nil {
		t.Error("empty axis accepted")
	}
	if err := run(func(s *sweep.Spec) { s.SSEWeight = -1 }); err == nil {
		t.Error("negative SSE weight accepted")
	}
}

func TestMetricNames(t *testing.T) {
	names := sweep.MetricNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("MetricNames not sorted: %v", names)
	}
	for _, want := range []string{"ipc", "l3_miss_pct", "mispredict_pct"} {
		i := sort.SearchStrings(names, want)
		if i >= len(names) || names[i] != want {
			t.Errorf("metric %q missing from registry %v", want, names)
		}
	}
	if !sweep.MetricMaximize("ipc") || sweep.MetricMaximize("l3_miss_pct") {
		t.Error("metric directions wrong")
	}
}

// TestRateAxisExpand: the rate.copies pseudo-axis expands into points
// that carry the copy count out-of-band — the machine geometry is the
// base config at every point, the label folds the copy count into the
// cache keyspace, and the cost proxy multiplies only the private levels.
func TestRateAxisExpand(t *testing.T) {
	base := machine.HaswellScaled()
	points, err := sweep.Expand(base, []sweep.Axis{
		{Param: sweep.RateAxis, Values: []int64{1, 2, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("expanded %d points, want 3", len(points))
	}
	for i, copies := range []int{1, 2, 4} {
		pt := points[i]
		if pt.RateCopies != copies {
			t.Errorf("point %d RateCopies = %d, want %d", i, pt.RateCopies, copies)
		}
		wantLabel := "rate.copies=" + sweep.FormatAxisValue(sweep.RateAxis, int64(copies))
		if pt.Label != wantLabel {
			t.Errorf("point %d label = %q, want %q", i, pt.Label, wantLabel)
		}
		if !strings.HasSuffix(pt.Config.Name, "@"+wantLabel) {
			t.Errorf("point %d config name %q lacks label suffix", i, pt.Config.Name)
		}
		// Copies are a scenario knob, not a hardware knob: the geometry
		// never moves.
		if pt.Config.Hierarchy.L3.SizeBytes != base.Hierarchy.L3.SizeBytes ||
			pt.Config.Hierarchy.L2.SizeBytes != base.Hierarchy.L2.SizeBytes {
			t.Errorf("point %d mutated the cache geometry", i)
		}
		if want := sweep.RateCost(base, copies); pt.CostBytes != want {
			t.Errorf("point %d cost = %d, want %d", i, pt.CostBytes, want)
		}
	}
	// Cost grows with copies (private slices replicate) but sub-linearly
	// (the shared L3 is paid once).
	if points[0].CostBytes >= points[2].CostBytes {
		t.Errorf("cost did not grow with copies: %d vs %d", points[0].CostBytes, points[2].CostBytes)
	}
	if 4*points[0].CostBytes <= points[2].CostBytes {
		t.Errorf("cost scaled super-linearly: 1 copy %d, 4 copies %d — shared L3 double-counted?",
			points[0].CostBytes, points[2].CostBytes)
	}
	// RateCost degenerates to ConfigCost at and below one copy.
	if sweep.RateCost(base, 1) != sweep.ConfigCost(base) || sweep.RateCost(base, 0) != sweep.ConfigCost(base) {
		t.Error("RateCost(1)/RateCost(0) differ from ConfigCost")
	}

	// Out-of-range copy counts fail at expansion, naming the bound.
	for _, v := range []int64{0, -1, sweep.MaxRateCopies + 1} {
		if _, err := sweep.Expand(base, []sweep.Axis{{Param: sweep.RateAxis, Values: []int64{v}}}); err == nil {
			t.Errorf("rate.copies=%d expanded, want range error", v)
		}
	}
}

// TestRateAxisValidate: rate cells only exist on the exact interleaved
// kernel, so specs pairing the axis with analytic screening or sampled
// escalation are rejected at validation, naming the axis.
func TestRateAxisValidate(t *testing.T) {
	pairs := testPairs()
	run := func(mutate func(*sweep.Spec)) error {
		s := sweep.Spec{
			Axes:        []sweep.Axis{{Param: sweep.RateAxis, Values: []int64{1, 2}}},
			Pairs:       pairs,
			Screen:      machine.FidelityExact,
			EscalateOff: true,
			Metrics:     []string{"aggregate_ipc", "l3_mpki"},
		}
		mutate(&s)
		_, err := sweep.Run(context.Background(), s, sweep.Options{Base: baseOptions()})
		return err
	}
	if err := run(func(s *sweep.Spec) { s.Screen = machine.FidelityAnalytic }); err == nil ||
		!strings.Contains(err.Error(), sweep.RateAxis) || !strings.Contains(err.Error(), "screen") {
		t.Errorf("analytic screen over rate axis: err = %v", err)
	}
	if err := run(func(s *sweep.Spec) {
		s.EscalateOff = false
		s.Escalate = machine.FidelitySampled
	}); err == nil || !strings.Contains(err.Error(), "escalate") {
		t.Errorf("sampled escalate over rate axis: err = %v", err)
	}
	if err := run(func(s *sweep.Spec) { s.Axes[0].Values = []int64{0, 2} }); err == nil {
		t.Error("copy count 0 validated")
	}
	if err := run(func(s *sweep.Spec) {
		s.Axes[0].Values = []int64{sweep.MaxRateCopies + 1}
	}); err == nil {
		t.Error("copy count beyond MaxRateCopies validated")
	}

	// The rate-aware metrics are registered with the right directions.
	names := sweep.MetricNames()
	for _, want := range []string{"aggregate_ipc", "l3_mpki"} {
		i := sort.SearchStrings(names, want)
		if i >= len(names) || names[i] != want {
			t.Errorf("metric %q missing from registry %v", want, names)
		}
	}
	if !sweep.MetricMaximize("aggregate_ipc") || sweep.MetricMaximize("l3_mpki") {
		t.Error("rate metric directions wrong")
	}
}

// TestRateSweepEndToEnd: a two-point copy-count sweep runs through the
// engine on the exact tier, scoring every cell on the interleaved kernel
// and producing the scaling-curve metrics per point.
func TestRateSweepEndToEnd(t *testing.T) {
	pairs := testPairs()
	spec := sweep.Spec{
		Axes:        []sweep.Axis{{Param: sweep.RateAxis, Values: []int64{1, 2}}},
		Pairs:       pairs,
		Screen:      machine.FidelityExact,
		EscalateOff: true,
		Metrics:     []string{"aggregate_ipc", "l3_mpki"},
	}
	res, err := sweep.Run(context.Background(), spec, sweep.Options{Base: baseOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Cells != 2*len(pairs) {
		t.Fatalf("points=%d cells=%d, want 2 points / %d cells", len(res.Points), res.Cells, 2*len(pairs))
	}
	if res.Screen.Simulated != 2*len(pairs) {
		t.Errorf("screen simulated %d cells, want %d", res.Screen.Simulated, 2*len(pairs))
	}
	var agg1, agg2 float64
	for _, p := range res.Points {
		v, ok := p.Metrics["aggregate_ipc"]
		if !ok || v <= 0 {
			t.Errorf("point %s: aggregate_ipc = %v (present=%v)", p.Label, v, ok)
		}
		if _, ok := p.Metrics["l3_mpki"]; !ok {
			t.Errorf("point %s: l3_mpki missing", p.Label)
		}
		switch p.Values[sweep.RateAxis] {
		case 1:
			agg1 = v
		case 2:
			agg2 = v
		default:
			t.Errorf("point %s: unexpected %s value %d", p.Label, sweep.RateAxis, p.Values[sweep.RateAxis])
		}
	}
	// Two copies on an uncontended hierarchy retire roughly twice the
	// aggregate work; any contention only lowers the ratio, so a factor
	// comfortably above 1 proves the copy count reached the kernel.
	if agg2 < agg1*1.2 {
		t.Errorf("aggregate IPC did not scale with copies: 1 copy %.4f, 2 copies %.4f", agg1, agg2)
	}
}

// TestSweepDifferential is the tentpole's core guarantee: a repeated
// sweep simulates zero cells and reproduces a byte-identical knee
// report, and an overlapping sweep simulates only the delta.
func TestSweepDifferential(t *testing.T) {
	dir := t.TempDir()
	pairs := testPairs()
	spec := testSpec(pairs)
	nPairs := len(pairs)
	screenCells := 4 * nPairs

	// First run: cold store, every screen cell simulated.
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt := baseOptions()
	opt.Store = st1
	var progs []sweep.Progress
	res1, err := sweep.Run(context.Background(), spec, sweep.Options{
		Base:     opt,
		Progress: func(p sweep.Progress) { progs = append(progs, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Screen.Simulated != screenCells || res1.Screen.Store != 0 || res1.Screen.Memory != 0 {
		t.Errorf("cold screen counts = %+v, want %d simulated", res1.Screen, screenCells)
	}
	nFrontier := 0
	for _, p := range res1.Points {
		if p.Frontier {
			nFrontier++
		}
	}
	if nFrontier == 0 {
		t.Fatal("no frontier points — escalation untested")
	}
	if res1.Escalate.Simulated != nFrontier*nPairs {
		t.Errorf("cold escalate counts = %+v, want %d simulated", res1.Escalate, nFrontier*nPairs)
	}
	if res1.Cells != screenCells+nFrontier*nPairs {
		t.Errorf("Cells = %d, want %d", res1.Cells, screenCells+nFrontier*nPairs)
	}
	if res1.ScreenTier != "analytic" || res1.EscalateTier != "sampled" {
		t.Errorf("tiers = %q/%q", res1.ScreenTier, res1.EscalateTier)
	}
	// Progress stream covered both phases and ended complete.
	phases := map[string]bool{}
	for _, p := range progs {
		phases[p.Phase] = true
	}
	if !phases["screen"] || !phases["escalate"] {
		t.Errorf("progress phases = %v", phases)
	}
	final := progs[len(progs)-1]
	if final.CellsDone != res1.Cells || final.CellsDone != final.CellsTotal {
		t.Errorf("final progress = %+v, want %d/%d cells", final, res1.Cells, res1.Cells)
	}

	// Second run, fresh process state (new store handle, new memory
	// cache): zero simulations, everything from the store, knee report
	// byte-identical.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt2 := baseOptions()
	opt2.Store = st2
	opt2.Cache = sched.NewCache()
	res2, err := sweep.Run(context.Background(), spec, sweep.Options{Base: opt2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Screen.Simulated != 0 || res2.Escalate.Simulated != 0 {
		t.Errorf("repeat simulated %d+%d cells, want 0",
			res2.Screen.Simulated, res2.Escalate.Simulated)
	}
	if res2.Screen.Store != screenCells || res2.Escalate.Store != nFrontier*nPairs {
		t.Errorf("repeat store counts = %+v / %+v", res2.Screen, res2.Escalate)
	}
	knees1, err := json.Marshal(res1.Knees)
	if err != nil {
		t.Fatal(err)
	}
	knees2, err := json.Marshal(res2.Knees)
	if err != nil {
		t.Fatal(err)
	}
	if string(knees1) != string(knees2) {
		t.Errorf("repeated sweep knee report differs:\n%s\n%s", knees1, knees2)
	}
	if !reflect.DeepEqual(res1.Points, res2.Points) {
		t.Error("repeated sweep point results differ")
	}

	// Overlapping sweep: one more l3.size value. Only the two new
	// points' screen cells simulate; the six old ones hit the store.
	wider := spec
	wider.Axes = []sweep.Axis{
		{Param: "l3.size", Values: []int64{1 << 20, 2 << 20, 4 << 20}},
		{Param: "l2.size", Values: []int64{128 << 10, 256 << 10}},
	}
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt3 := baseOptions()
	opt3.Store = st3
	opt3.Cache = sched.NewCache()
	res3, err := sweep.Run(context.Background(), wider, sweep.Options{Base: opt3})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Screen.Simulated != 2*nPairs {
		t.Errorf("overlap screen simulated %d cells, want the %d-cell delta",
			res3.Screen.Simulated, 2*nPairs)
	}
	if res3.Screen.Store != screenCells {
		t.Errorf("overlap screen store hits = %d, want %d", res3.Screen.Store, screenCells)
	}
}

// TestSweepCorruptStoreCellDegradesToMiss: damaging one stored cell
// record turns exactly that cell back into a simulated miss; the
// re-simulation repairs the record and the sweep's results are
// unchanged.
func TestSweepCorruptStoreCellDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	pairs := testPairs()
	spec := testSpec(pairs)
	spec.EscalateOff = true
	cells := 4 * len(pairs)

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt := baseOptions()
	opt.Store = st1
	res1, err := sweep.Run(context.Background(), spec, sweep.Options{Base: opt})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Screen.Simulated != cells {
		t.Fatalf("cold run simulated %d, want %d", res1.Screen.Simulated, cells)
	}

	// Truncate one record file mid-write style (same failure mode the
	// internal/store corruption table covers).
	var records []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			records = append(records, path)
		}
		return err
	})
	if len(records) != cells {
		t.Fatalf("store holds %d records, want %d", len(records), cells)
	}
	sort.Strings(records)
	data, err := os.ReadFile(records[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(records[0], data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt2 := baseOptions()
	opt2.Store = st2
	opt2.Cache = sched.NewCache()
	res2, err := sweep.Run(context.Background(), spec, sweep.Options{Base: opt2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Screen.Simulated != 1 || res2.Screen.Store != cells-1 {
		t.Errorf("after corruption: %+v, want 1 simulated / %d store", res2.Screen, cells-1)
	}
	if got := st2.Stats().Corrupt; got != 1 {
		t.Errorf("store corrupt counter = %d, want 1", got)
	}
	if !reflect.DeepEqual(res1.Points, res2.Points) {
		t.Error("re-simulated cell changed the sweep results")
	}

	// The write-through repaired the record: a third run simulates nothing.
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt3 := baseOptions()
	opt3.Store = st3
	opt3.Cache = sched.NewCache()
	res3, err := sweep.Run(context.Background(), spec, sweep.Options{Base: opt3})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Screen.Simulated != 0 {
		t.Errorf("post-repair run simulated %d cells, want 0", res3.Screen.Simulated)
	}
}

// TestSweepEscalationAgreement gates the escalated (sampled) aggregates
// against their analytic screens through the shared tolerance harness.
// The bounds are sanity bounds, not fidelity gates — the 20k-instruction
// test windows are far below the analytic tier's accuracy regime (the
// real gates live in internal/analytic) — but an escalation that
// disagrees wildly with its screen would make frontier selection
// meaningless.
func TestSweepEscalationAgreement(t *testing.T) {
	pairs := testPairs()
	spec := testSpec(pairs)
	res, err := sweep.Run(context.Background(), spec, sweep.Options{Base: baseOptions()})
	if err != nil {
		t.Fatal(err)
	}
	var g stats.Gate
	checked := 0
	for _, p := range res.Points {
		if p.Escalated == nil {
			continue
		}
		checked++
		g.Check(p.Label+"/ipc", p.Escalated["ipc"], p.Metrics["ipc"],
			stats.Tolerance{Rel: 0.35})
		g.Check(p.Label+"/l3_miss_pct", p.Escalated["l3_miss_pct"], p.Metrics["l3_miss_pct"],
			stats.Tolerance{Rel: 0.35, Abs: 20})
	}
	if checked == 0 {
		t.Fatal("no escalated points to check")
	}
	if !g.OK() {
		t.Error(g.Report())
	}

	// Knee reports use the escalated value for escalated points and mark
	// exactly one knee on the frontier.
	for _, k := range res.Knees {
		knees := 0
		for _, kp := range k.Points {
			if kp.Knee {
				knees++
				if kp.Label != k.Knee || kp.Value != k.KneeValue {
					t.Errorf("metric %s: knee point %+v disagrees with report header %+v", k.Metric, kp, k)
				}
			}
			var pr *sweep.PointResult
			for i := range res.Points {
				if res.Points[i].Label == kp.Label {
					pr = &res.Points[i]
				}
			}
			if pr == nil {
				t.Fatalf("knee point %q not in grid", kp.Label)
			}
			want := pr.Metrics[k.Metric]
			if kp.Escalated {
				want = pr.Escalated[k.Metric]
			}
			if kp.Value != want {
				t.Errorf("metric %s point %s: value %v, want %v (escalated=%v)",
					k.Metric, kp.Label, kp.Value, want, kp.Escalated)
			}
		}
		if knees != 1 {
			t.Errorf("metric %s: %d knee points, want 1", k.Metric, knees)
		}
		for i := 1; i < len(k.Points); i++ {
			if k.Points[i-1].CostBytes > k.Points[i].CostBytes {
				t.Errorf("metric %s: frontier not sorted by cost", k.Metric)
			}
		}
	}
}
