// Package sweep implements the design-space exploration subsystem:
// cartesian sweep campaigns over machine-configuration axes, scheduled
// differentially through the existing campaign cache tiers, with
// per-cell fidelity escalation and Pareto-knee reports.
//
// A sweep spec names a base machine, a list of axes (parameter x
// values), a pair list and two fidelity tiers. Expand turns the axes
// into a grid of configuration points; Run then executes one campaign
// per point at the cheap screen tier (every grid cell — one point x
// pair combination — is a normal campaign task whose content key is
// derived by core.CampaignKeys, so cells already in the memory cache or
// the content-addressed store are served without simulation), computes
// the per-metric value-vs-cost Pareto frontier across points, re-runs
// exactly the frontier points at the escalate tier, and picks the knee
// of each frontier with the same weighted min-max heuristic
// internal/subset uses for cluster counts (cluster.KneeWeighted).
//
// Everything is deterministic: expansion order, labels, aggregation and
// knee selection are pure functions of the spec, and cell results come
// from the same content-keyed cache tiers as ordinary campaigns — so a
// repeated sweep serves every cell from cache and renders a
// byte-identical report, and a fleet-sharded sweep is bit-identical to
// a single-node one.
package sweep

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perf"
	"repro/internal/profile"
	"repro/internal/sched"
)

// RateAxis is the scenario pseudo-axis sweeping the rate-mode copy
// count ("rate.copies=1,2,4,8"). It is not a machine.ApplyAxis
// parameter: the copy count leaves the configuration untouched and is
// recorded on the expanded Point instead, turning each grid cell into a
// shared-L3 contention run (core.Options.RateCopies). Rate cells only
// exist at exact fidelity, so specs carrying this axis must screen
// exact and escalate exact or not at all — contention has no analytic
// shortcut, and Validate rejects the combination rather than silently
// dropping it.
const RateAxis = "rate.copies"

// MaxRateCopies bounds the swept copy count; beyond it the round-robin
// interleave's memory footprint (one hierarchy per copy) stops being a
// sensible single-process simulation.
const MaxRateCopies = 64

// MaxPoints bounds a sweep's grid: axes multiply fast, and a grid this
// size at the analytic screen tier is already hours of work at exact
// fidelity. Specs expanding beyond it are rejected up front.
const MaxPoints = 1024

// Axis is one swept machine-configuration dimension.
type Axis struct {
	// Param is the machine axis parameter (machine.AxisParams):
	// "l2.size", "l3.ways", "line", ... — or the scenario pseudo-axis
	// RateAxis ("rate.copies"), which sweeps the rate-mode copy count
	// instead of a configuration field.
	Param string `json:"param"`
	// Values are the swept settings, in sweep order.
	Values []int64 `json:"values"`
}

// Spec describes one sweep.
type Spec struct {
	// Base is the configuration every axis is applied to; the zero
	// value means the default characterization machine.
	Base machine.Config
	// Axes are the swept dimensions; the grid is their cartesian
	// product, first axis outermost. Empty sweeps just the base point.
	Axes []Axis
	// Pairs are the workloads characterized at every grid point.
	Pairs []profile.Pair
	// Screen is the fidelity tier every cell is first run at
	// (typically machine.FidelityAnalytic; the zero value is exact).
	Screen machine.Fidelity
	// Escalate is the tier the Pareto-frontier points are re-run at
	// (typically machine.FidelitySampled or FidelityExact).
	Escalate machine.Fidelity
	// EscalateOff disables the escalation pass; Escalate == Screen
	// does too (re-running at the same tier would reproduce the same
	// cells).
	EscalateOff bool
	// Metrics are the swept metrics (MetricNames lists the registry);
	// empty means ipc and l3_miss_pct. Each gets its own frontier and
	// knee report.
	Metrics []string
	// SSEWeight scales the normalized metric axis in the knee pick,
	// exactly as internal/subset's SSE weight does: above 1 favours
	// metric quality over configuration cost. 0 means the default 5.
	SSEWeight float64
}

func (s Spec) withDefaults() Spec {
	if s.Base.ClockHz == 0 {
		s.Base = machine.HaswellScaled()
	}
	if len(s.Metrics) == 0 {
		s.Metrics = []string{"ipc", "l3_miss_pct"}
	}
	if s.SSEWeight == 0 {
		s.SSEWeight = 5
	}
	return s
}

// Validate rejects specs no sweep can honor. It is called by Run after
// defaulting; servers call it at submit time for early 4xx rejection.
func (s Spec) Validate() error {
	if len(s.Pairs) == 0 {
		return fmt.Errorf("sweep: spec selects no application-input pairs")
	}
	if s.SSEWeight < 0 {
		return fmt.Errorf("sweep: negative SSE weight %v", s.SSEWeight)
	}
	for _, m := range s.Metrics {
		if _, ok := metricDefs[m]; !ok {
			return fmt.Errorf("sweep: unknown metric %q (supported: %v)", m, MetricNames())
		}
	}
	seen := make(map[string]bool, len(s.Axes))
	for _, ax := range s.Axes {
		if len(ax.Values) == 0 {
			return fmt.Errorf("sweep: axis %q has no values", ax.Param)
		}
		if seen[ax.Param] {
			return fmt.Errorf("sweep: axis %q listed twice", ax.Param)
		}
		seen[ax.Param] = true
		if ax.Param != RateAxis {
			continue
		}
		for _, v := range ax.Values {
			if v < 1 {
				return fmt.Errorf("sweep: %s value %d: copy counts start at 1", RateAxis, v)
			}
			if v > MaxRateCopies {
				return fmt.Errorf("sweep: %s value %d exceeds %d", RateAxis, v, MaxRateCopies)
			}
		}
		// Rate cells run on the shared-L3 interleaved kernel, which only
		// exists at exact fidelity; an analytic screen would silently
		// score contention-free cells, so the combination is an error.
		if s.Screen != machine.FidelityExact {
			return fmt.Errorf("sweep: axis %s requires an exact screen tier (got %s): contention cannot be screened analytically", RateAxis, s.Screen)
		}
		if !s.EscalateOff && s.Escalate != machine.FidelityExact {
			return fmt.Errorf("sweep: axis %s requires an exact (or disabled) escalate tier (got %s)", RateAxis, s.Escalate)
		}
	}
	return nil
}

// Point is one expanded grid point: a concrete machine configuration
// plus its identifying label.
type Point struct {
	// Index is the point's position in expansion order.
	Index int
	// Label identifies the point deterministically ("l2.size=512KiB,
	// l3.size=4MiB"; "base" for an axis-free sweep).
	Label string
	// Values maps each axis parameter to this point's setting.
	Values map[string]int64
	// Config is the validated machine configuration.
	Config machine.Config
	// RateCopies is the point's rate-mode copy count when the spec
	// sweeps RateAxis; 0 otherwise (single-copy).
	RateCopies int
	// CostBytes is the configuration cost proxy used on every Pareto
	// frontier: total cache capacity, with private levels multiplied by
	// the copy count on rate points.
	CostBytes int64
}

// ConfigCost is the sweep's configuration cost proxy: total cache
// capacity in bytes. Silicon area is overwhelmingly SRAM for the
// parameters the axes expose, so capacity orders design points the way
// an area budget would.
func ConfigCost(cfg machine.Config) int64 { return RateCost(cfg, 1) }

// RateCost extends ConfigCost to rate-mode points: each copy owns
// private L1I/L1D/L2 slices while the inclusive L3 is shared, so
// capacity scales as copies x private + shared. copies <= 1 reproduces
// ConfigCost.
func RateCost(cfg machine.Config, copies int) int64 {
	if copies < 1 {
		copies = 1
	}
	h := cfg.Hierarchy
	private := int64(h.L1I.SizeBytes) + int64(h.L1D.SizeBytes) + int64(h.L2.SizeBytes)
	return private*int64(copies) + int64(h.L3.SizeBytes)
}

// FormatAxisValue renders one axis value the way point labels do:
// byte-sized parameters use exact KiB/MiB suffixes, everything else is
// the plain integer.
func FormatAxisValue(param string, v int64) string {
	if len(param) > 5 && param[len(param)-5:] == ".size" || param == "line" {
		switch {
		case v >= 1<<20 && v%(1<<20) == 0:
			return fmt.Sprintf("%dMiB", v>>20)
		case v >= 1<<10 && v%(1<<10) == 0:
			return fmt.Sprintf("%dKiB", v>>10)
		}
	}
	return fmt.Sprintf("%d", v)
}

// ParseAxis parses the CLI axis syntax "param=v1,v2,..."; values take
// optional KiB/MiB/GiB (or bare K/M/G) binary suffixes. It is the
// inverse of Param + "=" + joined FormatAxisValue.
func ParseAxis(s string) (Axis, error) {
	param, list, ok := strings.Cut(s, "=")
	if !ok {
		return Axis{}, fmt.Errorf("axis %q: want param=v1,v2,...", s)
	}
	ax := Axis{Param: strings.TrimSpace(param)}
	for _, raw := range strings.Split(list, ",") {
		v, err := parseAxisValue(strings.TrimSpace(raw))
		if err != nil {
			return Axis{}, fmt.Errorf("axis %q: %w", s, err)
		}
		ax.Values = append(ax.Values, v)
	}
	if len(ax.Values) == 0 {
		return Axis{}, fmt.Errorf("axis %q: no values", s)
	}
	return ax, nil
}

func parseAxisValue(s string) (int64, error) {
	mult := int64(1)
	lower := strings.ToLower(s)
	for _, suf := range []struct {
		text string
		mult int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30},
	} {
		if strings.HasSuffix(lower, suf.text) {
			mult = suf.mult
			s = s[:len(s)-len(suf.text)]
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v * mult, nil
}

// Expand applies the axes' cartesian product to the base configuration,
// first axis outermost, values in spec order. Every returned point's
// configuration has been validated; the point label is appended to the
// base machine's name so each point owns a distinct result-cache
// keyspace even when an axis value coincides with the base setting.
func Expand(base machine.Config, axes []Axis) ([]Point, error) {
	total := 1
	for _, ax := range axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Param)
		}
		total *= len(ax.Values)
		if total > MaxPoints {
			return nil, fmt.Errorf("sweep: grid expands beyond %d points", MaxPoints)
		}
	}
	points := make([]Point, 0, total)
	idx := make([]int, len(axes))
	for {
		cfg := base
		values := make(map[string]int64, len(axes))
		label := ""
		copies := 0
		for a, ax := range axes {
			v := ax.Values[idx[a]]
			if ax.Param == RateAxis {
				// Scenario pseudo-axis: the copy count is recorded on
				// the point, not applied to the configuration.
				if v < 1 || v > MaxRateCopies {
					return nil, fmt.Errorf("sweep: %s value %d out of range [1,%d]", RateAxis, v, MaxRateCopies)
				}
				copies = int(v)
			} else {
				var err error
				cfg, err = machine.ApplyAxis(cfg, ax.Param, v)
				if err != nil {
					return nil, err
				}
			}
			values[ax.Param] = v
			if label != "" {
				label += ","
			}
			label += ax.Param + "=" + FormatAxisValue(ax.Param, v)
		}
		if label == "" {
			label = "base"
		} else {
			cfg.Name = base.Name + "@" + label
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %s: %w", label, err)
		}
		points = append(points, Point{
			Index: len(points), Label: label, Values: values,
			Config: cfg, RateCopies: copies,
			CostBytes: RateCost(cfg, copies),
		})
		// Odometer increment, last axis fastest.
		a := len(axes) - 1
		for ; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(axes[a].Values) {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			return points, nil
		}
	}
}

// --- Metric registry --------------------------------------------------

type metricDef struct {
	pick     func(*core.Characteristics) float64
	maximize bool
}

// metricDefs registers the sweepable metrics. Aggregation across pairs
// follows the paper's convention (core.Aggregate: per-app means, then
// the mean across applications).
var metricDefs = map[string]metricDef{
	"ipc":            {func(c *core.Characteristics) float64 { return c.IPC }, true},
	"exec_seconds":   {func(c *core.Characteristics) float64 { return c.ExecSeconds }, false},
	"l1_miss_pct":    {func(c *core.Characteristics) float64 { return c.L1MissPct }, false},
	"l2_miss_pct":    {func(c *core.Characteristics) float64 { return c.L2MissPct }, false},
	"l3_miss_pct":    {func(c *core.Characteristics) float64 { return c.L3MissPct }, false},
	"mispredict_pct": {func(c *core.Characteristics) float64 { return c.MispredictPct }, false},
	// aggregate_ipc is the rate-mode scaling metric: summed throughput
	// across the contending copies. On single-copy cells it degrades to
	// plain IPC, so a rate.copies axis charts the scaling curve and the
	// copies=1 point anchors it.
	"aggregate_ipc": {func(c *core.Characteristics) float64 {
		if c.Rate != nil {
			return c.Rate.AggregateIPC
		}
		return c.IPC
	}, true},
	// l3_mpki is last-level misses per kilo-instruction — the paper's
	// contention unit. Rate cells report the shared L3's; single-copy
	// cells derive it from the counter snapshot (0 when the tier carries
	// no counters, i.e. analytic).
	"l3_mpki": {func(c *core.Characteristics) float64 {
		if c.Rate != nil {
			return c.Rate.SharedL3MPKI
		}
		if c.Counters == nil {
			return 0
		}
		return 1000 * c.Counters.Ratio(perf.L3Miss, perf.InstRetired)
	}, false},
}

// MetricNames returns the sweepable metric names, sorted.
func MetricNames() []string {
	names := make([]string, 0, len(metricDefs))
	for n := range metricDefs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MetricMaximize reports whether the named metric is
// higher-is-better. Unknown metrics report false.
func MetricMaximize(name string) bool { return metricDefs[name].maximize }

// --- Engine -----------------------------------------------------------

// Runner executes one grid point's campaign. The default is
// core.Characterize; specserved's coordinator substitutes its fleet
// scatter so sharded sweeps reuse the same differential path.
type Runner func(ctx context.Context, pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error)

// CellCounts splits completed cells by satisfying source, mirroring the
// campaign scheduler's tier accounting.
type CellCounts struct {
	Simulated int `json:"simulated"`
	Memory    int `json:"memory"`
	Store     int `json:"store"`
	Remote    int `json:"remote"`
}

func (c *CellCounts) add(p sched.Progress) {
	c.Simulated += p.Done - p.CacheHits - p.Remote
	c.Memory += p.CacheHits - p.StoreHits
	c.Store += p.StoreHits
	c.Remote += p.Remote
}

// Total is the number of cells the counts cover.
func (c CellCounts) Total() int { return c.Simulated + c.Memory + c.Store + c.Remote }

// Progress is one sweep progress snapshot.
type Progress struct {
	// Phase is "screen" or "escalate".
	Phase string `json:"phase"`
	// PointsDone / PointsTotal count grid points in the current phase.
	PointsDone  int `json:"points_done"`
	PointsTotal int `json:"points_total"`
	// CellsDone / CellsTotal count cells across both phases; the total
	// grows when the escalation set is known.
	CellsDone  int `json:"cells_done"`
	CellsTotal int `json:"cells_total"`
	// Screen and Escalate split completed cells by satisfying source.
	Screen   CellCounts `json:"screen"`
	Escalate CellCounts `json:"escalate"`
	// ElapsedMS is wall time since the sweep started.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// Options configure a sweep run.
type Options struct {
	// Base carries the per-campaign options every grid point inherits:
	// cache and store tiers (the differential scheduling substrate),
	// instruction window, parallelism, multiplexing, sampling knob for
	// the sampled tier, and trace. Machine, Fidelity, Context and
	// Progress are overridden per point.
	Base core.Options
	// Run executes one point's campaign (default core.Characterize).
	Run Runner
	// Progress, when non-nil, receives sweep progress snapshots
	// (serially) as cells complete.
	Progress func(Progress)
}

// PointResult is one grid point's aggregated metrics.
type PointResult struct {
	Label     string           `json:"label"`
	Values    map[string]int64 `json:"values,omitempty"`
	CostBytes int64            `json:"cost_bytes"`
	// Metrics are the screen-tier aggregates (per-app means, then the
	// mean across applications) for every swept metric.
	Metrics map[string]float64 `json:"metrics"`
	// Escalated are the escalate-tier aggregates; present only for
	// points on some metric's Pareto frontier when escalation ran.
	Escalated map[string]float64 `json:"escalated,omitempty"`
	// Frontier reports whether the point sits on at least one swept
	// metric's value-vs-cost Pareto frontier.
	Frontier bool `json:"frontier"`
}

// KneePoint is one frontier point in a knee report.
type KneePoint struct {
	Label string `json:"label"`
	// Value is the best available aggregate: the escalate tier's when
	// the point was escalated, the screen tier's otherwise.
	Value float64 `json:"value"`
	// ScreenValue is the screen-tier aggregate the frontier was
	// selected on.
	ScreenValue float64 `json:"screen_value"`
	CostBytes   int64   `json:"cost_bytes"`
	Escalated   bool    `json:"escalated"`
	Knee        bool    `json:"knee"`
}

// KneeReport is one swept metric's Pareto frontier and knee.
type KneeReport struct {
	Metric string `json:"metric"`
	// Maximize reports the metric's direction (the frontier minimizes
	// cost either way).
	Maximize  bool    `json:"maximize"`
	SSEWeight float64 `json:"sse_weight"`
	// Knee is the label of the selected knee point; KneeValue and
	// KneeCost are its coordinates.
	Knee      string  `json:"knee"`
	KneeValue float64 `json:"knee_value"`
	KneeCost  int64   `json:"knee_cost_bytes"`
	// Points is the frontier, sorted by cost ascending.
	Points []KneePoint `json:"points"`
}

// Result is a completed sweep.
type Result struct {
	// Points are the grid points in expansion order.
	Points []PointResult `json:"points"`
	// Knees is one report per swept metric, in spec order.
	Knees []KneeReport `json:"knees"`
	// ScreenTier and EscalateTier name the fidelity tiers the two
	// phases ran at; EscalateTier is empty when no escalation ran.
	ScreenTier   string `json:"screen_tier"`
	EscalateTier string `json:"escalate_tier,omitempty"`
	// Screen and Escalate split each phase's cells by satisfying
	// source — the differential-scheduling scoreboard: a repeated
	// sweep reports zero simulated cells.
	Screen   CellCounts `json:"screen"`
	Escalate CellCounts `json:"escalate"`
	// Cells is the total cell count across both phases.
	Cells int `json:"cells"`
}

// engine carries one run's state.
type engine struct {
	spec   Spec
	opt    Options
	run    Runner
	points []Point
	start  time.Time

	prog Progress
}

// Run executes the sweep. See the package comment for the phase
// structure; errors abort the sweep (context cancellation included).
func Run(ctx context.Context, spec Spec, opt Options) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Screen == machine.FidelityAnalytic && spec.Escalate == machine.FidelityAnalytic && !spec.EscalateOff {
		// Same-tier escalation is a no-op; normalize instead of erroring.
		spec.EscalateOff = true
	}
	points, err := Expand(spec.Base, spec.Axes)
	if err != nil {
		return nil, err
	}
	e := &engine{spec: spec, opt: opt, run: opt.Run, points: points, start: time.Now()}
	if e.run == nil {
		e.run = func(ctx context.Context, pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
			opt.Context = ctx
			return core.Characterize(pairs, opt)
		}
	}
	return e.execute(ctx)
}

// tierOptions derives one grid point's campaign options.
func (e *engine) tierOptions(ctx context.Context, pt Point, tier machine.Fidelity) core.Options {
	opt := e.opt.Base
	opt.Machine = pt.Config
	opt.Fidelity = tier
	if tier != machine.FidelitySampled {
		// The base sampling knob applies only to the sampled tier: it
		// does not compose with analytic and would silently turn an
		// exact tier into a sampled one.
		opt.Sampling = machine.Sampling{}
	}
	if pt.RateCopies > 0 {
		// Rate points own their copy count; points without a rate axis
		// inherit whatever the base options carry.
		opt.RateCopies = pt.RateCopies
	}
	opt.Context = ctx
	return opt
}

// runPoint executes one point at one tier, streaming cell progress and
// returning the campaign's final scheduling snapshot for tier
// accounting.
func (e *engine) runPoint(ctx context.Context, pt Point, tier machine.Fidelity, phase string, baseCells int) ([]core.Characteristics, sched.Progress, error) {
	opt := e.tierOptions(ctx, pt, tier)
	var last sched.Progress
	opt.Progress = func(p sched.Progress) {
		last = p
		e.emit(phase, baseCells+p.Done)
	}
	chars, err := e.run(ctx, e.spec.Pairs, opt)
	return chars, last, err
}

func (e *engine) emit(phase string, cellsDone int) {
	if e.opt.Progress == nil {
		return
	}
	p := e.prog
	p.Phase = phase
	p.CellsDone = cellsDone
	p.ElapsedMS = time.Since(e.start).Milliseconds()
	e.opt.Progress(p)
}

func (e *engine) execute(ctx context.Context) (*Result, error) {
	nPairs := len(e.spec.Pairs)
	res := &Result{
		Points:     make([]PointResult, len(e.points)),
		ScreenTier: e.spec.Screen.String(),
	}
	e.prog = Progress{
		Phase:       "screen",
		PointsTotal: len(e.points),
		CellsTotal:  len(e.points) * nPairs,
	}

	// Phase 1: screen every grid point at the cheap tier. Differential
	// scheduling happens inside the campaign engine: each cell's
	// content key is looked up in the memory cache and the
	// content-addressed store before any simulation is dispatched.
	screened := make([][]core.Characteristics, len(e.points))
	cells := 0
	for i, pt := range e.points {
		chars, last, err := e.runPoint(ctx, pt, e.spec.Screen, "screen", cells)
		if err != nil {
			return nil, fmt.Errorf("sweep: point %s: %w", pt.Label, err)
		}
		screened[i] = chars
		cells += nPairs
		e.prog.Screen.add(last)
		e.prog.PointsDone = i + 1
		e.prog.CellsDone = cells
		e.emit("screen", cells)

		metrics := make(map[string]float64, len(e.spec.Metrics))
		for _, m := range e.spec.Metrics {
			metrics[m] = core.Aggregate(chars, metricDefs[m].pick).Mean
		}
		res.Points[i] = PointResult{
			Label: pt.Label, Values: pt.Values, CostBytes: pt.CostBytes,
			Metrics: metrics,
		}
	}

	// Phase 2: per-metric Pareto frontier over (value, cost) across all
	// points, selected on the screen-tier aggregates. cluster.Tradeoff
	// minimizes both objectives, so maximize-metrics negate their value.
	frontier := make(map[string][]cluster.Tradeoff, len(e.spec.Metrics))
	escalate := make(map[int]bool)
	for _, m := range e.spec.Metrics {
		def := metricDefs[m]
		cands := make([]cluster.Tradeoff, len(e.points))
		for i := range e.points {
			v := res.Points[i].Metrics[m]
			if def.maximize {
				v = -v
			}
			cands[i] = cluster.Tradeoff{K: i, SSE: v, Cost: float64(e.points[i].CostBytes)}
		}
		front := cluster.ParetoFront(cands)
		frontier[m] = front
		for _, f := range front {
			res.Points[f.K].Frontier = true
			escalate[f.K] = true
		}
	}

	// Phase 3: escalate the frontier points at the verify tier —
	// differential again, so a frontier point escalated by an earlier
	// sweep costs nothing.
	doEscalate := !e.spec.EscalateOff && e.spec.Escalate != e.spec.Screen && len(escalate) > 0
	escalated := make(map[int][]core.Characteristics)
	if doEscalate {
		res.EscalateTier = e.spec.Escalate.String()
		escIdx := make([]int, 0, len(escalate))
		for i := range escalate {
			escIdx = append(escIdx, i)
		}
		sort.Ints(escIdx)
		e.prog.Phase = "escalate"
		e.prog.PointsDone, e.prog.PointsTotal = 0, len(escIdx)
		e.prog.CellsTotal += len(escIdx) * nPairs
		for n, i := range escIdx {
			chars, last, err := e.runPoint(ctx, e.points[i], e.spec.Escalate, "escalate", cells)
			if err != nil {
				return nil, fmt.Errorf("sweep: escalating point %s: %w", e.points[i].Label, err)
			}
			escalated[i] = chars
			cells += nPairs
			e.prog.Escalate.add(last)
			e.prog.PointsDone = n + 1
			e.prog.CellsDone = cells
			e.emit("escalate", cells)

			vals := make(map[string]float64, len(e.spec.Metrics))
			for _, m := range e.spec.Metrics {
				vals[m] = core.Aggregate(chars, metricDefs[m].pick).Mean
			}
			res.Points[i].Escalated = vals
		}
	}

	// Phase 4: knee per metric over its frontier, using the escalated
	// aggregates where available. Frontier membership stays as screened
	// (the screen picked which points were worth verifying); the knee is
	// chosen on the best values we hold.
	for _, m := range e.spec.Metrics {
		def := metricDefs[m]
		front := frontier[m]
		report := KneeReport{
			Metric: m, Maximize: def.maximize, SSEWeight: e.spec.SSEWeight,
		}
		cands := make([]cluster.Tradeoff, len(front))
		for j, f := range front {
			i := f.K
			v := res.Points[i].Metrics[m]
			if esc := res.Points[i].Escalated; esc != nil {
				v = esc[m]
			}
			sse := v
			if def.maximize {
				sse = -v
			}
			cands[j] = cluster.Tradeoff{K: i, SSE: sse, Cost: float64(e.points[i].CostBytes)}
		}
		knee := cluster.KneeWeighted(cands, e.spec.SSEWeight)
		report.Knee = e.points[knee.K].Label
		report.KneeCost = e.points[knee.K].CostBytes
		kv := knee.SSE
		if def.maximize {
			kv = -kv
		}
		report.KneeValue = kv

		report.Points = make([]KneePoint, len(cands))
		for j, c := range cands {
			i := c.K
			v := c.SSE
			if def.maximize {
				v = -v
			}
			_, wasEscalated := escalated[i]
			report.Points[j] = KneePoint{
				Label:       e.points[i].Label,
				Value:       v,
				ScreenValue: res.Points[i].Metrics[m],
				CostBytes:   e.points[i].CostBytes,
				Escalated:   wasEscalated,
				Knee:        i == knee.K,
			}
		}
		sort.SliceStable(report.Points, func(a, b int) bool {
			return report.Points[a].CostBytes < report.Points[b].CostBytes
		})
		res.Knees = append(res.Knees, report)
	}

	res.Screen = e.prog.Screen
	res.Escalate = e.prog.Escalate
	res.Cells = cells
	return res, nil
}
