package speckit

import (
	"encoding/json"
	"os"
	"testing"
)

// benchBaselines mirrors BENCH_kernel.json: recorded kernel benchmark
// throughputs plus the acceptance floors their ratios must clear.
type benchBaselines struct {
	Benchmarks map[string]struct {
		UopsPerS float64 `json:"uops_per_s"`
	} `json:"benchmarks"`
	Floors map[string]float64 `json:"floors"`
}

// TestKernelBenchBaselines gates the recorded kernel baselines against
// the acceptance floors: the batched machine kernel must be >=1.5x the
// per-uop reference, the sampled kernel >=3x the exact per-pair cost,
// the analytic tier >=100x it, and the 8-window parallel kernel's
// critical path >=2x the sequential per-pair wall clock. It checks the
// numbers recorded in BENCH_kernel.json — not a
// live timing, which a loaded CI machine would make flaky — so a kernel
// regression is caught at re-record time and a stale record that never
// met the floor is caught on every run (bench-smoke re-times the
// benchmarks for liveness right before this gate).
func TestKernelBenchBaselines(t *testing.T) {
	raw, err := os.ReadFile("BENCH_kernel.json")
	if err != nil {
		t.Fatalf("reading baselines: %v", err)
	}
	var b benchBaselines
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parsing BENCH_kernel.json: %v", err)
	}
	uops := func(name string) float64 {
		e, ok := b.Benchmarks[name]
		if !ok || e.UopsPerS <= 0 {
			t.Fatalf("BENCH_kernel.json missing benchmark %q", name)
		}
		return e.UopsPerS
	}
	floor := func(name string) float64 {
		f, ok := b.Floors[name]
		if !ok || f <= 0 {
			t.Fatalf("BENCH_kernel.json missing floor %q", name)
		}
		return f
	}
	ratios := []struct {
		floor    string
		num, den string
	}{
		{"machine_batched_over_peruop", "BenchmarkKernelMachine/batched", "BenchmarkKernelMachine/peruop"},
		{"sampled_over_exact", "BenchmarkKernelSampled/sampled", "BenchmarkKernelSampled/exact"},
		{"analytic_over_exact", "BenchmarkKernelAnalytic", "BenchmarkKernelSampled/exact"},
		{"parallel_over_sequential", "BenchmarkKernelParallel/par8", "BenchmarkKernelParallel/sequential"},
	}
	for _, r := range ratios {
		got := uops(r.num) / uops(r.den)
		want := floor(r.floor)
		if got < want {
			t.Errorf("%s: recorded ratio %.2fx below floor %.2fx (%s / %s)",
				r.floor, got, want, r.num, r.den)
		} else {
			t.Logf("%s: %.2fx (floor %.2fx)", r.floor, got, want)
		}
	}
}
