package speckit

import (
	"repro/internal/machine"
	"repro/internal/phase"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Phase analysis: the paper's Section VI future work ("explore their
// phase behavior in order to identify the applications' simulation
// phases"), implemented SimPoint-style over the synthetic streams. See
// internal/phase for the method.

// PhaseSegment is one leg of a phased workload schedule.
type PhaseSegment = phase.Segment

// PhaseInterval is one sliced interval with its behaviour signature.
type PhaseInterval = phase.Interval

// PhaseResult is the outcome of phase detection.
type PhaseResult = phase.Result

// PhaseOptions configure phase detection.
type PhaseOptions = phase.Options

// NewPhasedWorkload builds a repeating multi-phase uop stream from the
// given schedule on the default characterization machine's geometry.
func NewPhasedWorkload(segments []PhaseSegment) (trace.Source, error) {
	return phase.NewPhasedSource(segments, machine.HaswellScaled().Geometry())
}

// SliceIntervals consumes n intervals of intervalLen uops from the source
// and returns their signatures.
func SliceIntervals(src trace.Source, intervalLen uint64, n int) ([]PhaseInterval, error) {
	return phase.Slice(src, intervalLen, n)
}

// SliceIntervalsSampled slices n intervals of intervalLen uops whose
// starts are spaced stride apart, fast-forwarding the gaps through the
// source's skip capability — systematic sampling at the phase-analysis
// layer, covering a stride/intervalLen-times-longer stretch of the
// stream for the same slicing cost.
func SliceIntervalsSampled(src trace.Source, intervalLen, stride uint64, n int) ([]PhaseInterval, error) {
	return phase.SliceSampled(src, intervalLen, stride, n)
}

// DetectPhases clusters interval signatures into execution phases and
// picks one simulation point per phase.
func DetectPhases(intervals []PhaseInterval, opt PhaseOptions) (*PhaseResult, error) {
	return phase.Detect(intervals, opt)
}

// AnalyzePhases slices and phase-detects an application's stream in one
// call: the workload's model at the given input size, sliced into n
// intervals of intervalLen instructions (prologue excluded).
func AnalyzePhases(w *Workload, size InputSize, intervalLen uint64, n int) (*PhaseResult, error) {
	pair := (*profile.Profile)(w).Expand(size)[0]
	gen, err := synth.New(pair.Model, machine.HaswellScaled().Geometry())
	if err != nil {
		return nil, err
	}
	gen.Skip(gen.Prologue())
	intervals, err := phase.Slice(gen, intervalLen, n)
	if err != nil {
		return nil, err
	}
	return phase.Detect(intervals, PhaseOptions{})
}
