package speckit

// This file is the benchmark harness of deliverable (d): one benchmark per
// table and figure of the paper's evaluation, each regenerating the
// exhibit and reporting its headline numbers as custom metrics, plus
// ablation benchmarks for the design choices DESIGN.md calls out.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Absolute values come from the simulated scale model; the shapes (who
// wins, by what factor, where crossovers fall) are the reproduction
// targets. EXPERIMENTS.md records paper-vs-measured for every exhibit.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/analytic"
	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/phase"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/rdist"
	"repro/internal/synth"
	"repro/internal/trace"
)

// benchWindow keeps single-CPU bench iterations affordable.
const benchWindow = 40000

var benchOpt = Options{Instructions: benchWindow}

// Cached full characterizations for the analysis-side benches.
var (
	benchOnce  sync.Once
	benchAll17 []Characteristics
	benchRef17 []Characteristics
	benchRef06 []Characteristics
	benchRate  []Characteristics
	benchSpeed []Characteristics
)

func benchFixtures(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		benchAll17, err = CharacterizeAllSizes(CPU2017(), benchOpt)
		if err != nil {
			panic(err)
		}
		for i := range benchAll17 {
			if benchAll17[i].Pair.Size == Ref {
				benchRef17 = append(benchRef17, benchAll17[i])
			}
		}
		benchRef06, err = Characterize(CPU2006(), Ref, benchOpt)
		if err != nil {
			panic(err)
		}
		for _, m := range []MiniSuite{RateInt, RateFP} {
			benchRate = append(benchRate, BySuite(benchRef17, m)...)
		}
		for _, m := range []MiniSuite{SpeedInt, SpeedFP} {
			benchSpeed = append(benchSpeed, BySuite(benchRef17, m)...)
		}
	})
}

// BenchmarkTableII regenerates the per-mini-suite execution summary across
// all 194 application-input pairs and three input sizes.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chars, err := CharacterizeAllSizes(CPU2017(), benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		t := TableII(chars)
		if t.Rows() != 12 {
			b.Fatalf("Table II rows = %d", t.Rows())
		}
		s := core.SummarizeSuite(chars, RateInt, Ref)
		b.ReportMetric(s.IPC, "rateIntIPC")
		s = core.SummarizeSuite(chars, SpeedFP, Ref)
		b.ReportMetric(s.IPC, "speedFpIPC")
	}
}

func benchComparison(b *testing.B, build func(cpu17, cpu06 []Characteristics) *Table,
	metric string, pick func(*Characteristics) float64) {
	benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := build(benchRef17, benchRef06)
		if t.Rows() != 6 {
			b.Fatalf("rows = %d", t.Rows())
		}
	}
	s17 := Aggregate(benchRef17, pick)
	s06 := Aggregate(benchRef06, pick)
	b.ReportMetric(s17.Mean, "cpu17_"+metric)
	b.ReportMetric(s06.Mean, "cpu06_"+metric)
}

// BenchmarkTableIII regenerates the IPC comparison (paper: 1.457 vs 1.784).
func BenchmarkTableIII(b *testing.B) {
	benchComparison(b, TableIII, "ipc", func(c *Characteristics) float64 { return c.IPC })
}

// BenchmarkTableIV regenerates the instruction-mix comparison.
func BenchmarkTableIV(b *testing.B) {
	benchComparison(b, TableIV, "loadpct", func(c *Characteristics) float64 { return c.LoadPct })
}

// BenchmarkTableV regenerates the footprint comparison (paper: CPU17 RSS
// ~5.3x CPU06).
func BenchmarkTableV(b *testing.B) {
	benchComparison(b, TableV, "rss_gib", func(c *Characteristics) float64 { return c.RSSMiB / 1024 })
}

// BenchmarkTableVI regenerates the cache miss-rate comparison.
func BenchmarkTableVI(b *testing.B) {
	benchComparison(b, TableVI, "l2miss", func(c *Characteristics) float64 { return c.L2MissPct })
}

// BenchmarkTableVII regenerates the branch mispredict comparison
// (paper: 2.198 vs 2.145).
func BenchmarkTableVII(b *testing.B) {
	benchComparison(b, TableVII, "misp", func(c *Characteristics) float64 { return c.MispredictPct })
}

func benchFigure(b *testing.B, fig func([]Characteristics) []*FigureSeries) {
	benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		panels := fig(benchRef17)
		for _, p := range panels {
			if len(p.SVG()) == 0 {
				b.Fatal("empty SVG")
			}
		}
	}
}

// BenchmarkFig1IPC regenerates the per-application IPC panels.
func BenchmarkFig1IPC(b *testing.B) { benchFigure(b, Fig1) }

// BenchmarkFig2MemUops regenerates the memory micro-op breakdown panels.
func BenchmarkFig2MemUops(b *testing.B) { benchFigure(b, Fig2) }

// BenchmarkFig3Branches regenerates the branch-percentage panels.
func BenchmarkFig3Branches(b *testing.B) { benchFigure(b, Fig3) }

// BenchmarkFig4Footprint regenerates the RSS/VSZ panels.
func BenchmarkFig4Footprint(b *testing.B) { benchFigure(b, Fig4) }

// BenchmarkFig5CacheMiss regenerates the cache miss-rate panels.
func BenchmarkFig5CacheMiss(b *testing.B) { benchFigure(b, Fig5) }

// BenchmarkFig6Mispredict regenerates the mispredict-rate panels.
func BenchmarkFig6Mispredict(b *testing.B) { benchFigure(b, Fig6) }

// BenchmarkFig7PCA regenerates the PCA scatter plots and reports the
// paper's 4-PC variance coverage (76.321%).
func BenchmarkFig7PCA(b *testing.B) {
	benchFixtures(b)
	b.ResetTimer()
	var variance float64
	for i := 0; i < b.N; i++ {
		res, err := Subset(benchRate, SubsetOptions{Components: 4})
		if err != nil {
			b.Fatal(err)
		}
		pc12, pc34 := Fig7(res)
		if len(pc12) == 0 || len(pc34) == 0 {
			b.Fatal("empty scatter")
		}
		variance = res.PCA.VarianceExplained(4)
	}
	b.ReportMetric(variance*100, "pc4variance%")
}

// BenchmarkTableIX regenerates the PC-cluster validation table.
func BenchmarkTableIX(b *testing.B) {
	benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := TableIX(benchRef17); t.Rows() != 6 {
			b.Fatalf("Table IX rows = %d", t.Rows())
		}
	}
}

// BenchmarkFig8Loadings regenerates the factor-loading figure.
func BenchmarkFig8Loadings(b *testing.B) {
	benchFixtures(b)
	res, err := Subset(benchRate, SubsetOptions{Components: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Fig8(res)) == 0 {
			b.Fatal("empty loadings figure")
		}
	}
}

// BenchmarkFig9Dendrogram regenerates both dendrograms.
func BenchmarkFig9Dendrogram(b *testing.B) {
	benchFixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rate, err := Subset(benchRate, SubsetOptions{})
		if err != nil {
			b.Fatal(err)
		}
		speed, err := Subset(benchSpeed, SubsetOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(Fig9("rate", rate)) == 0 || len(Fig9("speed", speed)) == 0 {
			b.Fatal("empty dendrogram")
		}
	}
}

// BenchmarkFig10Pareto regenerates the Pareto curves and reports the
// chosen cluster counts (paper: rate 12, speed 10).
func BenchmarkFig10Pareto(b *testing.B) {
	benchFixtures(b)
	b.ResetTimer()
	var rateK, speedK int
	for i := 0; i < b.N; i++ {
		rate, err := Subset(benchRate, SubsetOptions{})
		if err != nil {
			b.Fatal(err)
		}
		speed, err := Subset(benchSpeed, SubsetOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(Fig10("rate", rate)) == 0 || len(Fig10("speed", speed)) == 0 {
			b.Fatal("empty Pareto figure")
		}
		rateK, speedK = rate.ChosenK, speed.ChosenK
	}
	b.ReportMetric(float64(rateK), "rateK")
	b.ReportMetric(float64(speedK), "speedK")
}

// BenchmarkTableX regenerates the suggested subset and reports the
// execution-time savings (paper: rate 57.116%, speed 62.052%).
func BenchmarkTableX(b *testing.B) {
	benchFixtures(b)
	b.ResetTimer()
	var rateSave, speedSave float64
	for i := 0; i < b.N; i++ {
		rate, err := Subset(benchRate, SubsetOptions{})
		if err != nil {
			b.Fatal(err)
		}
		speed, err := Subset(benchSpeed, SubsetOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if TableX(rate, speed).Rows() != 2 {
			b.Fatal("Table X shape")
		}
		rateSave, speedSave = rate.Saving(), speed.Saving()
	}
	b.ReportMetric(rateSave*100, "rateSaving%")
	b.ReportMetric(speedSave*100, "speedSaving%")
}

// --- Ablation benches -------------------------------------------------

// ablationPair returns a memory-sensitive pair for hardware ablations.
func ablationPair() profile.Pair {
	for _, p := range profile.CPU2017() {
		if p.Name == "520.omnetpp_r" {
			return p.Expand(profile.Ref)[0]
		}
	}
	panic("missing 520.omnetpp_r")
}

func runAblation(b *testing.B, cfg machine.Config, pair profile.Pair) *machine.Result {
	b.Helper()
	gen, err := synth.New(pair.Model, machine.HaswellScaled().Geometry())
	if err != nil {
		b.Fatal(err)
	}
	res, err := machine.Run(cfg, gen, machine.Options{
		Instructions:       benchWindow,
		WarmupInstructions: gen.Prologue(),
		Workload:           pipeline.Workload{ILP: 2, MLP: pair.Model.MLP},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationReplacement sweeps LLC replacement policies on a
// capacity-pressured configuration.
func BenchmarkAblationReplacement(b *testing.B) {
	pair := ablationPair()
	for _, pol := range cache.Policies() {
		b.Run(pol.Name(), func(b *testing.B) {
			var miss float64
			for i := 0; i < b.N; i++ {
				cfg := machine.HaswellScaled()
				cfg.Hierarchy.L3.SizeBytes = 512 << 10
				cfg.Hierarchy.L3.Policy = pol
				res := runAblation(b, cfg, pair)
				miss = res.Counters.CacheMissPct(3)
			}
			b.ReportMetric(miss, "l3miss%")
		})
	}
}

// BenchmarkAblationPredictor sweeps branch direction predictors on a
// mispredict-heavy workload (541.leela_r).
func BenchmarkAblationPredictor(b *testing.B) {
	var pair profile.Pair
	for _, p := range profile.CPU2017() {
		if p.Name == "541.leela_r" {
			pair = p.Expand(profile.Ref)[0]
		}
	}
	for _, mk := range []func() branch.Predictor{
		func() branch.Predictor { return branch.Static{} },
		func() branch.Predictor { return branch.NewBimodal(14) },
		func() branch.Predictor { return branch.NewGshare(14, 12) },
		func() branch.Predictor { return branch.NewTwoLevelLocal(12, 12) },
		func() branch.Predictor { return branch.NewTournament(14) },
		func() branch.Predictor { return branch.NewPerceptron(10, 24) },
		func() branch.Predictor { return branch.NewTAGE(11, nil) },
	} {
		name := mk().Name()
		b.Run(name, func(b *testing.B) {
			var misp float64
			for i := 0; i < b.N; i++ {
				cfg := machine.HaswellScaled()
				cfg.NewPredictor = mk
				res := runAblation(b, cfg, pair)
				misp = res.Counters.MispredictPct()
			}
			b.ReportMetric(misp, "misp%")
		})
	}
}

// BenchmarkAblationLinkage sweeps clustering linkages and reports the
// chosen subset size under each.
func BenchmarkAblationLinkage(b *testing.B) {
	benchFixtures(b)
	for _, l := range cluster.Linkages() {
		b.Run(l.String(), func(b *testing.B) {
			var k int
			for i := 0; i < b.N; i++ {
				res, err := Subset(benchRate, SubsetOptions{Linkage: l})
				if err != nil {
					b.Fatal(err)
				}
				k = res.ChosenK
			}
			b.ReportMetric(float64(k), "chosenK")
		})
	}
}

// BenchmarkAblationPCs sweeps the number of retained principal components
// and reports subset-size stability.
func BenchmarkAblationPCs(b *testing.B) {
	benchFixtures(b)
	for _, pcs := range []int{2, 3, 4, 6, 8} {
		b.Run(map[bool]string{true: "pc"}[true]+itoa(pcs), func(b *testing.B) {
			var k int
			var variance float64
			for i := 0; i < b.N; i++ {
				res, err := Subset(benchRate, SubsetOptions{Components: pcs})
				if err != nil {
					b.Fatal(err)
				}
				k = res.ChosenK
				variance = res.VarianceExplained
			}
			b.ReportMetric(float64(k), "chosenK")
			b.ReportMetric(variance*100, "variance%")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationSharedL3 compares a solo run against four co-runners
// sharing the LLC, reporting the contention-induced L3 miss growth (the
// mechanism behind the paper's speed-fp IPC collapse).
func BenchmarkAblationSharedL3(b *testing.B) {
	pair := ablationPair()
	for _, streams := range []int{1, 2, 4} {
		b.Run("streams"+itoa(streams), func(b *testing.B) {
			var miss float64
			for i := 0; i < b.N; i++ {
				cfg := machine.HaswellScaled()
				srcs := make([]trace.Source, streams)
				var prologue uint64
				for sidx := range srcs {
					m := pair.Model
					m.Seed += uint64(sidx)
					gen, err := synth.New(m, cfg.Geometry())
					if err != nil {
						b.Fatal(err)
					}
					prologue = gen.Prologue()
					srcs[sidx] = gen
				}
				res, err := machine.RunShared(cfg, srcs, machine.Options{
					Instructions:       benchWindow,
					WarmupInstructions: prologue,
					Workload:           pipeline.Workload{ILP: 2, MLP: pair.Model.MLP},
				})
				if err != nil {
					b.Fatal(err)
				}
				miss = res.PerCore[0].Counters.CacheMissPct(3)
			}
			b.ReportMetric(miss, "l3miss%")
		})
	}
}

// BenchmarkAblationPrefetch compares prefetchers on the L2 data path for
// a streaming workload (519.lbm_r).
func BenchmarkAblationPrefetch(b *testing.B) {
	var pair profile.Pair
	for _, p := range profile.CPU2017() {
		if p.Name == "519.lbm_r" {
			pair = p.Expand(profile.Ref)[0]
		}
	}
	cases := []struct {
		name string
		pf   func() cache.Prefetcher
	}{
		{"none", func() cache.Prefetcher { return nil }},
		{"nextline", func() cache.Prefetcher { return &cache.NextLinePrefetcher{LineBytes: 64} }},
		{"stride", func() cache.Prefetcher { return &cache.StridePrefetcher{LineBytes: 64} }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var miss float64
			for i := 0; i < b.N; i++ {
				cfg := machine.HaswellScaled()
				cfg.Hierarchy.Prefetcher = tc.pf()
				res := runAblation(b, cfg, pair)
				miss = res.Counters.CacheMissPct(2)
			}
			b.ReportMetric(miss, "l2miss%")
		})
	}
}

// BenchmarkCampaignCache measures the memoizing result cache on a repeat
// campaign: one cold pass fills the cache, then every timed pass is
// served entirely from it. Reports the warm hit rate and the cold/warm
// speedup (the acceptance floor is 5x).
func BenchmarkCampaignCache(b *testing.B) {
	suite := CPU2017().Mini(RateInt)
	cache := NewCache()
	opt := benchOpt
	opt.Cache = cache
	coldStart := time.Now()
	cold, err := Characterize(suite, Ref, opt)
	if err != nil {
		b.Fatal(err)
	}
	coldDur := time.Since(coldStart)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm, err := Characterize(suite, Ref, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(warm) != len(cold) {
			b.Fatalf("warm pass returned %d pairs, want %d", len(warm), len(cold))
		}
	}
	b.StopTimer()
	warmDur := b.Elapsed() / time.Duration(b.N)
	stats := cache.Stats()
	b.ReportMetric(100*stats.HitRate(), "hit%")
	if warmDur > 0 {
		b.ReportMetric(float64(coldDur)/float64(warmDur), "speedup")
	}
}

// BenchmarkCharacterizePair measures single-pair simulation throughput.
func BenchmarkCharacterizePair(b *testing.B) {
	pair := ablationPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CharacterizePair(pair, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPipeline measures the end-to-end paper reproduction: ref
// characterization of both suites plus both subset computations.
func BenchmarkFullPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ref17, err := Characterize(CPU2017(), Ref, benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Characterize(CPU2006(), Ref, benchOpt); err != nil {
			b.Fatal(err)
		}
		var rate []Characteristics
		for _, m := range []MiniSuite{RateInt, RateFP} {
			rate = append(rate, BySuite(ref17, m)...)
		}
		if _, err := Subset(rate, SubsetOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClusterAlgo compares hierarchical (Ward) clustering
// against k-means at the paper's chosen subset size on the same PC
// scores, reporting each algorithm's SSE.
func BenchmarkAblationClusterAlgo(b *testing.B) {
	benchFixtures(b)
	res, err := Subset(benchRate, SubsetOptions{Components: 4})
	if err != nil {
		b.Fatal(err)
	}
	points := make([][]float64, res.Scores.Rows())
	for i := range points {
		points[i] = res.Scores.Row(i)
	}
	k := res.ChosenK
	b.Run("ward", func(b *testing.B) {
		var sse float64
		for i := 0; i < b.N; i++ {
			d := cluster.Agglomerate(points, cluster.Ward)
			sse = cluster.SSE(points, d.Cut(k))
		}
		b.ReportMetric(sse, "sse")
	})
	b.Run("kmeans", func(b *testing.B) {
		var sse float64
		for i := 0; i < b.N; i++ {
			sse = cluster.KMeans(points, k, 1).SSE
		}
		b.ReportMetric(sse, "sse")
	})
}

// BenchmarkPhaseDetection measures the future-work phase-analysis
// pipeline (Section VI): slice a phased stream, detect phases, report the
// phase count and simulation saving.
func BenchmarkPhaseDetection(b *testing.B) {
	apps := map[string]*profile.Profile{}
	for _, p := range profile.CPU2017() {
		apps[p.Name] = p
	}
	var k int
	var speedup float64
	for i := 0; i < b.N; i++ {
		src, err := phase.NewPhasedSource([]phase.Segment{
			{Model: apps["525.x264_r"].Expand(profile.Ref)[0].Model, Instr: 12000},
			{Model: apps["505.mcf_r"].Expand(profile.Ref)[0].Model, Instr: 12000},
		}, machine.HaswellScaled().Geometry())
		if err != nil {
			b.Fatal(err)
		}
		ivs, err := phase.Slice(src, 4000, 24)
		if err != nil {
			b.Fatal(err)
		}
		res, err := phase.Detect(ivs, phase.Options{})
		if err != nil {
			b.Fatal(err)
		}
		k = res.K
		speedup = res.SpeedupFactor()
	}
	b.ReportMetric(float64(k), "phases")
	b.ReportMetric(speedup, "speedup")
}

// --- Kernel microbenchmarks -------------------------------------------
//
// BenchmarkKernel* isolate the simulation hot path at three depths —
// generator only, cache hierarchy only, full machine — and report
// throughput as a uops/s custom metric. The peruop/batched sub-benchmark
// pairs quantify the batched kernel's speedup over the per-uop reference
// kernel (EXPERIMENTS.md records the measured ratios; the acceptance
// floor for the full machine is 1.5x).

// kernelChunk is the uop count each kernel benchmark iteration processes.
const kernelChunk = 1 << 16

// kernelPair returns the headline pair for the kernel microbenchmarks:
// 508.namd_r is compute-dense with an L1-resident working set, so the
// kernel's own overheads — not simulated-miss handling — dominate, which
// is exactly what these benchmarks isolate.
func kernelPair() profile.Pair {
	for _, p := range profile.CPU2017() {
		if p.Name == "508.namd_r" {
			return p.Expand(profile.Ref)[0]
		}
	}
	panic("missing 508.namd_r")
}

// reportUops converts the elapsed benchmark time into a uops/s metric.
func reportUops(b *testing.B, perIter int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(perIter)*float64(b.N)/s, "uops/s")
	}
}

func kernelGen(b *testing.B, pair profile.Pair) *synth.Generator {
	b.Helper()
	gen, err := synth.New(pair.Model, machine.HaswellScaled().Geometry())
	if err != nil {
		b.Fatal(err)
	}
	return gen
}

// BenchmarkKernelSynth measures trace generation alone: the per-uop Next
// path against the batched NextBatch path.
func BenchmarkKernelSynth(b *testing.B) {
	pair := kernelPair()
	b.Run("peruop", func(b *testing.B) {
		gen := kernelGen(b, pair)
		var u trace.Uop
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < kernelChunk; k++ {
				if !gen.Next(&u) {
					b.Fatal("stream ended")
				}
			}
		}
		reportUops(b, kernelChunk)
	})
	b.Run("batched", func(b *testing.B) {
		gen := kernelGen(b, pair)
		buf := make([]trace.Uop, machine.DefaultBatchSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for done := 0; done < kernelChunk; {
				n := gen.NextBatch(buf)
				if n == 0 {
					b.Fatal("stream ended")
				}
				done += n
			}
		}
		reportUops(b, kernelChunk)
	})
}

// BenchmarkKernelCache measures the cache hierarchy alone on a
// pre-materialized uop stream (generation excluded from the loop).
func BenchmarkKernelCache(b *testing.B) {
	pair := kernelPair()
	gen := kernelGen(b, pair)
	uops := make([]trace.Uop, kernelChunk)
	if gen.NextBatch(uops) != len(uops) {
		b.Fatal("short stream")
	}
	cfg := machine.HaswellScaled()
	hier := cache.NewHierarchy(cfg.Hierarchy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range uops {
			u := &uops[k]
			hier.L1I().Access(u.PC, cache.AccessFetch)
			if u.IsMem() {
				kind := cache.AccessLoad
				if u.Kind == trace.KindStore {
					kind = cache.AccessStore
				}
				hier.Data(u.Addr, kind)
			}
		}
	}
	reportUops(b, kernelChunk)
}

// BenchmarkKernelMachine measures the full simulation: the per-uop
// reference kernel (RunReference) against the batched production kernel
// (Run) on the same workload. The batched/peruop uops/s ratio is the
// tentpole acceptance metric (floor: 1.5x).
func BenchmarkKernelMachine(b *testing.B) {
	pair := kernelPair()
	cfg := machine.HaswellScaled()
	run := func(b *testing.B, batched bool) {
		var total uint64
		for i := 0; i < b.N; i++ {
			// Generator construction is setup, not kernel work: each
			// iteration needs a fresh generator (identical stream), so
			// build it with the timer stopped.
			b.StopTimer()
			gen := kernelGen(b, pair)
			opt := machine.Options{
				Instructions:       kernelChunk,
				WarmupInstructions: gen.Prologue(),
				Workload:           pipeline.Workload{ILP: 2, MLP: pair.Model.MLP},
			}
			// Warmup instructions run through the same kernel, so count
			// them in the throughput denominator.
			total = opt.Instructions + opt.WarmupInstructions
			b.StartTimer()
			var err error
			if batched {
				_, err = machine.Run(cfg, gen, opt)
			} else {
				_, err = machine.RunReference(cfg, gen, opt)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		reportUops(b, int(total))
	}
	b.Run("peruop", func(b *testing.B) { run(b, false) })
	b.Run("batched", func(b *testing.B) { run(b, true) })
}

// BenchmarkKernelSampled measures the sampled-simulation fidelity knob:
// one production characterization pair run exact against the same pair
// run sampled at the default knob (machine.DefaultSampling) on a
// 16Mi-instruction stream — the multi-million instruction regime
// sampling exists for. Each side uses the options the core package
// drives it with: the exact run pays the default fractional warmup, the
// sampled run replaces it with its own settle window (WarmupFraction
// -1), so the exact/sampled ns/op ratio is the per-pair wall-clock
// speedup a sampled campaign sees. That ratio is this tentpole's
// acceptance metric (floor: 3x; BENCH_kernel.json records the measured
// baselines and TestKernelBenchBaselines gates the floor in
// bench-smoke). Throughput counts measured instructions only, so
// uops/s also reflects the per-pair cost, not kernel speed.
func BenchmarkKernelSampled(b *testing.B) {
	pair := kernelPair()
	cfg := machine.HaswellScaled()
	const instr = 16 << 20
	run := func(b *testing.B, sp machine.Sampling) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			gen := kernelGen(b, pair)
			opt := machine.Options{
				Instructions:       instr,
				WarmupInstructions: gen.Prologue(),
				Workload:           pipeline.Workload{ILP: 2, MLP: pair.Model.MLP},
				CalibrateIPC:       pair.Model.TargetIPC,
				Sampling:           sp,
			}
			if sp.Enabled() {
				opt.WarmupFraction = -1
			}
			b.StartTimer()
			if _, err := machine.Run(cfg, gen, opt); err != nil {
				b.Fatal(err)
			}
		}
		reportUops(b, instr)
	}
	b.Run("exact", func(b *testing.B) { run(b, machine.Sampling{}) })
	b.Run("sampled", func(b *testing.B) { run(b, machine.DefaultSampling()) })
}

// BenchmarkKernelParallel measures intra-pair parallel simulation: one
// pair run sequentially against the same pair split into 8 concurrent
// windows (machine.RunParallel) on an 8Mi-instruction stream — the
// single-large-pair regime the windowed kernel exists for. The par8
// sub-benchmark reports two metrics: uops/s over wall time (on a
// machine with fewer cores than windows, executor-pool serialization
// makes this near-sequential) and crituops/s over the critical path —
// the slowest single window, i.e. the wall clock an 8-core run
// achieves, which is the honest speedup proxy this box (often 1-2
// CPUs in CI) can measure. The crituops_per_s(par8) /
// uops_per_s(sequential) ratio is the tentpole acceptance metric
// (floor: 2x; BENCH_kernel.json records the measured baselines and
// TestKernelBenchBaselines gates the floor in bench-smoke).
func BenchmarkKernelParallel(b *testing.B) {
	pair := kernelPair()
	cfg := machine.HaswellScaled()
	const instr = 8 << 20
	newSource := func() (trace.Source, error) {
		return synth.New(pair.Model, cfg.Geometry())
	}
	options := func(gen *synth.Generator) machine.Options {
		return machine.Options{
			Instructions:       instr,
			WarmupInstructions: gen.Prologue(),
			Workload:           pipeline.Workload{ILP: 2, MLP: pair.Model.MLP},
			CalibrateIPC:       pair.Model.TargetIPC,
		}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			gen := kernelGen(b, pair)
			opt := options(gen)
			b.StartTimer()
			if _, err := machine.Run(cfg, gen, opt); err != nil {
				b.Fatal(err)
			}
		}
		reportUops(b, instr)
	})
	b.Run("par8", func(b *testing.B) {
		var crit float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			gen := kernelGen(b, pair)
			opt := options(gen)
			b.StartTimer()
			res, err := machine.RunParallel(cfg, newSource, opt, 8)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if res.Parallel == nil || res.Parallel.Workers != 8 {
				b.Fatalf("expected 8 parallel windows, got %+v", res.Parallel)
			}
			crit += res.Parallel.CriticalPathSeconds()
			b.StartTimer()
		}
		reportUops(b, instr)
		if crit > 0 {
			b.ReportMetric(float64(instr)*float64(b.N)/crit, "crituops/s")
		}
	})
}

// BenchmarkKernelAnalytic measures the analytic fidelity tier on the
// same pair, machine and 16Mi-instruction window as
// BenchmarkKernelSampled: the per-pair cost of predicting the hierarchy
// miss rates from a short reuse-distance profile instead of simulating
// every reference. The analytic/exact uops/s ratio
// (BenchmarkKernelAnalytic over BenchmarkKernelSampled/exact) is the
// analytic tentpole's acceptance metric (floor: 100x; BENCH_kernel.json
// records the measured baselines and TestKernelBenchBaselines gates the
// floor in bench-smoke). The cost is dominated by the fixed profile and
// measure windows, so the speedup grows with the instruction window.
func BenchmarkKernelAnalytic(b *testing.B) {
	pair := kernelPair()
	cfg := machine.HaswellScaled()
	const instr = 16 << 20
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gen := kernelGen(b, pair)
		opt := machine.Options{
			Instructions:       instr,
			WarmupInstructions: gen.Prologue(),
			Workload:           pipeline.Workload{ILP: 2, MLP: pair.Model.MLP},
			CalibrateIPC:       pair.Model.TargetIPC,
		}
		b.StartTimer()
		if _, err := analytic.Run(cfg, gen, opt); err != nil {
			b.Fatal(err)
		}
	}
	reportUops(b, instr)
}

// BenchmarkReuseDistanceProfile measures the exact reuse-distance
// profiler on a generator stream and reports the predicted
// fully-associative hit rate at the L1 capacity.
func BenchmarkReuseDistanceProfile(b *testing.B) {
	pair := ablationPair()
	var hit float64
	for i := 0; i < b.N; i++ {
		gen, err := synth.New(pair.Model, machine.HaswellScaled().Geometry())
		if err != nil {
			b.Fatal(err)
		}
		prof := rdist.NewProfiler(64)
		var u trace.Uop
		refs := 0
		for refs < 50000 {
			if !gen.Next(&u) {
				b.Fatal("stream ended")
			}
			if u.IsMem() {
				prof.Touch(u.Addr)
				refs++
			}
		}
		hit = prof.Histogram().HitRateAt(512)
	}
	b.ReportMetric(hit*100, "l1hit%")
}
