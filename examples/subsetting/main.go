// Subsetting walkthrough: reproduce the paper's Section V methodology on
// the SPECrate suites — PCA over the 20 microarchitecture-independent
// characteristics, hierarchical clustering of the PC scores, and the
// Pareto-knee choice of a representative subset.
package main

import (
	"fmt"
	"log"

	speckit "repro"
)

func main() {
	suite := append(speckit.CPU2017().Mini(speckit.RateInt),
		speckit.CPU2017().Mini(speckit.RateFP)...)

	chars, err := speckit.Characterize(suite, speckit.Ref, speckit.Options{
		Instructions: 200000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("characterized %d rate application-input pairs\n\n", len(chars))

	res, err := speckit.Subset(chars, speckit.SubsetOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: the PCA reduces 20 characteristics to a few components.
	fmt.Printf("PCA: retained %d components explaining %.1f%% of variance\n",
		res.Components, res.VarianceExplained*100)
	for k := 1; k <= res.Components; k++ {
		fmt.Printf("  PC%-2d eigenvalue %6.3f (cumulative %.1f%%)\n",
			k, res.PCA.Eigenvalues[k-1], res.PCA.VarianceExplained(k)*100)
	}

	// Step 2: the Pareto sweep trades clustering error against the
	// subset's execution time.
	fmt.Printf("\nPareto sweep (knee at k=%d):\n", res.ChosenK)
	for _, tr := range res.Tradeoffs {
		if tr.K > res.ChosenK+3 {
			break
		}
		marker := " "
		if tr.K == res.ChosenK {
			marker = "*"
		}
		fmt.Printf(" %s k=%-3d SSE=%8.2f subset time=%8.0fs\n", marker, tr.K, tr.SSE, tr.Cost)
	}

	// Step 3: one representative per cluster, by minimum execution time.
	fmt.Printf("\nsuggested subset (%d of %d pairs, %.1f%% time saving):\n",
		len(res.Representatives), len(chars), res.Saving()*100)
	for _, rep := range res.Representatives {
		fmt.Printf("  %-24s represents %2d pairs (%.0fs)\n",
			rep.Name, rep.ClusterSize, rep.ExecSeconds)
	}
}
