// Cache sweep: run one memory-bound workload across last-level cache
// sizes and replacement policies, demonstrating why the paper separates
// microarchitecture-independent characteristics (stable below) from
// microarchitecture-dependent ones (the miss rates that move).
package main

import (
	"fmt"
	"log"

	speckit "repro"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/synth"
)

func main() {
	// 520.omnetpp_r: discrete-event simulation with a scattered heap —
	// the classic LLC-sensitive workload.
	var app *speckit.Workload
	for _, p := range speckit.CPU2017() {
		if p.Name == "520.omnetpp_r" {
			app = p
		}
	}
	pair := app.Expand(profile.Ref)[0]

	fmt.Println("LLC size sweep (LRU):")
	fmt.Printf("%10s %10s %10s %8s\n", "L3 size", "L3 miss%", "mem/kinstr", "IPC")
	for _, kb := range []int{512, 1024, 2048, 4096} {
		res := runWith(pair, kb<<10, cache.LRU{})
		fmt.Printf("%9dK %10.2f %10.2f %8.3f\n",
			kb, res.Counters.CacheMissPct(3),
			float64(res.Events.MemAccesses)/float64(res.Events.Instructions)*1000,
			res.IPC)
	}

	fmt.Println("\nreplacement policy sweep (512K LLC, capacity-pressured):")
	fmt.Printf("%10s %10s %8s\n", "policy", "L3 miss%", "IPC")
	for _, pol := range cache.Policies() {
		res := runWith(pair, 512<<10, pol)
		fmt.Printf("%10s %10.2f %8.3f\n", pol.Name(), res.Counters.CacheMissPct(3), res.IPC)
	}

	fmt.Println("\nmicroarchitecture-independent characteristics stay put:")
	res := runWith(pair, 2<<20, cache.LRU{})
	fmt.Printf("  %.1f%% loads, %.1f%% stores, %.1f%% branches at every configuration\n",
		res.Counters.LoadPct(), res.Counters.StorePct(), res.Counters.BranchPct())
}

// runWith simulates the pair on a machine whose L3 size and policy are
// overridden. The workload ILP is fixed from a baseline calibration so
// IPC responds to the cache configuration (an ablation, not a
// recalibration).
func runWith(pair profile.Pair, l3Bytes int, pol cache.Policy) *machine.Result {
	cfg := machine.HaswellScaled()
	cfg.Hierarchy.L3.SizeBytes = l3Bytes
	cfg.Hierarchy.L3.Policy = pol

	// Baseline calibration on the default machine fixes the ILP.
	base := machine.HaswellScaled()
	gen, err := synth.New(pair.Model, base.Geometry())
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := machine.Run(base, gen, machine.Options{
		Instructions:       150000,
		WarmupInstructions: gen.Prologue(),
		Workload:           pipeline.Workload{ILP: 2, MLP: pair.Model.MLP},
		CalibrateIPC:       pair.Model.TargetIPC,
	})
	if err != nil {
		log.Fatal(err)
	}

	gen2, err := synth.New(pair.Model, base.Geometry())
	if err != nil {
		log.Fatal(err)
	}
	res, err := machine.Run(cfg, gen2, machine.Options{
		Instructions:       150000,
		WarmupInstructions: gen2.Prologue(),
		Workload:           pipeline.Workload{ILP: baseRes.ILP, MLP: pair.Model.MLP},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
