// Quickstart: characterize one SPEC CPU2017 mini-suite and print the
// headline metrics, end to end in a few lines of code.
package main

import (
	"fmt"
	"log"

	speckit "repro"
)

func main() {
	// Pick the SPECrate 2017 Integer applications at the ref input size.
	suite := speckit.CPU2017().Mini(speckit.RateInt)

	// Simulate each application-input pair on the (scaled) Haswell
	// machine model. Instructions controls the sampled window per pair.
	chars, err := speckit.Characterize(suite, speckit.Ref, speckit.Options{
		Instructions: 200000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %6s %8s %8s %8s\n", "pair", "IPC", "branch%", "L2miss%", "misp%")
	for _, c := range chars {
		fmt.Printf("%-22s %6.3f %8.2f %8.2f %8.2f\n",
			c.Pair.Name(), c.IPC, c.BranchPct, c.L2MissPct, c.MispredictPct)
	}

	ipc := speckit.Aggregate(chars, func(c *speckit.Characteristics) float64 { return c.IPC })
	fmt.Printf("\nrate int mean IPC = %.3f +- %.3f (paper Table II: 1.724)\n", ipc.Mean, ipc.Std)
}
