// Phases: detect execution phases in a composite workload and show how
// simulating only one representative interval per phase reconstructs
// whole-program behaviour — the paper's Section VI future-work direction.
package main

import (
	"fmt"
	"log"

	speckit "repro"
	"repro/internal/profile"
)

func main() {
	// A compiler-like composite: a front-end phase (branchy, small
	// footprint: x264-ish), a middle-end phase (pointer-chasing: mcf)
	// and a back-end phase (streaming stores: lbm).
	apps := map[string]*speckit.Workload{}
	for _, p := range speckit.CPU2017() {
		apps[p.Name] = p
	}
	model := func(name string) profile.Model {
		return apps[name].Expand(profile.Ref)[0].Model
	}

	const leg = 12000
	src, err := speckit.NewPhasedWorkload([]speckit.PhaseSegment{
		{Model: model("525.x264_r"), Instr: leg},
		{Model: model("505.mcf_r"), Instr: leg},
		{Model: model("519.lbm_r"), Instr: leg},
	})
	if err != nil {
		log.Fatal(err)
	}

	intervals, err := speckit.SliceIntervals(src, 4000, 36)
	if err != nil {
		log.Fatal(err)
	}
	res, err := speckit.DetectPhases(intervals, speckit.PhaseOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("three-legged workload -> %d detected phases\n", res.K)
	fmt.Printf("simulation points: ")
	for _, p := range res.Phases {
		fmt.Printf("interval %d (weight %.2f)  ", p.Representative, p.Weight)
	}
	fmt.Printf("\nsimulation saving: %.1fx, coverage error %.3f\n\n",
		res.SpeedupFactor(), res.CoverageError)

	fmt.Println("timeline (interval -> phase):")
	for _, p := range res.Assign {
		fmt.Printf("%d", p)
	}
	fmt.Println()

	fmt.Println("\nper-phase character:")
	for i, p := range res.Phases {
		fmt.Printf("  phase %d: %.1f%% loads, %.1f%% branches, %.3f new lines/instr\n",
			i, p.Centroid[0]*100, p.Centroid[2]*100, p.Centroid[7])
	}
}
