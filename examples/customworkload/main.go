// Custom workload: define your own application model, characterize it
// alongside the SPEC CPU2017 applications, and find which SPEC
// application it most resembles — the "which benchmark represents my
// code?" question benchmark subsetting exists to answer.
package main

import (
	"fmt"
	"log"
	"math"

	speckit "repro"
)

func main() {
	// A pointer-chasing in-memory database shard: memory-bound, branchy,
	// with a large resident set — defined with the same knobs as the
	// built-in SPEC models.
	myApp := &speckit.Workload{
		Name:          "900.mydb",
		Suite:         speckit.RateInt,
		InstrBillions: 800,
		TargetIPC:     0.95,
		LoadPct:       30, StorePct: 8, BranchPct: 24,
		Mix:           speckit.CPU2017()[0].Mix, // reuse the integer branch mix
		MispredictPct: 5.5,
		L1MissPct:     9, L2MissPct: 60, L3MissPct: 22,
		RSSMiB: 900, VSZMiB: 1100,
		MLP: 3.5, CodeKiB: 300, BranchSites: 2500, Threads: 1,
	}

	suite := append(speckit.Suite{myApp}, speckit.CPU2017().Mini(speckit.RateInt)...)
	chars, err := speckit.Characterize(suite, speckit.Ref, speckit.Options{
		Instructions: 200000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Find mydb and compare against every SPEC pair with a simple
	// normalized distance over the headline characteristics.
	var mine *speckit.Characteristics
	for i := range chars {
		if chars[i].Pair.App.Name == "900.mydb" {
			mine = &chars[i]
		}
	}
	fmt.Printf("%s: IPC %.3f, %.1f%% mem uops, L2 miss %.1f%%, mispredict %.1f%%\n\n",
		mine.Pair.Name(), mine.IPC, mine.MemPct(), mine.L2MissPct, mine.MispredictPct)

	type match struct {
		name string
		d    float64
	}
	var best []match
	for i := range chars {
		c := &chars[i]
		if c.Pair.App.Name == "900.mydb" {
			continue
		}
		d := dist(mine, c)
		best = append(best, match{c.Pair.Name(), d})
	}
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].d < best[i].d {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	fmt.Println("closest SPECrate 2017 Integer pairs:")
	for _, m := range best[:5] {
		fmt.Printf("  %-24s distance %.3f\n", m.name, m.d)
	}
	fmt.Println("\n(expect mcf-like neighbours: memory-bound and branchy)")
}

// dist is a hand-rolled normalized Euclidean distance over the metrics
// that dominate the paper's PC1/PC2.
func dist(a, b *speckit.Characteristics) float64 {
	terms := [][2]float64{
		{a.IPC, b.IPC},
		{a.MemPct() / 10, b.MemPct() / 10},
		{a.BranchPct / 10, b.BranchPct / 10},
		{a.L2MissPct / 20, b.L2MissPct / 20},
		{a.MispredictPct / 3, b.MispredictPct / 3},
		{math.Log10(a.RSSMiB + 1), math.Log10(b.RSSMiB + 1)},
	}
	s := 0.0
	for _, t := range terms {
		d := t[0] - t[1]
		s += d * d
	}
	return math.Sqrt(s)
}
