package speckit_test

import (
	"fmt"
	"log"

	speckit "repro"
)

// Characterize one application-input pair and read its headline metrics.
func ExampleCharacterize() {
	suite := speckit.CPU2017().Mini(speckit.RateInt)
	// Just 505.mcf_r for a quick, deterministic example.
	var mcf speckit.Suite
	for _, app := range suite {
		if app.Name == "505.mcf_r" {
			mcf = append(mcf, app)
		}
	}
	chars, err := speckit.Characterize(mcf, speckit.Ref, speckit.Options{Instructions: 60000})
	if err != nil {
		log.Fatal(err)
	}
	c := chars[0]
	fmt.Printf("%s IPC=%.3f branches=%.0f%%\n", c.Pair.Name(), c.IPC, c.BranchPct)
	// Output:
	// 505.mcf_r IPC=0.886 branches=31%
}

// Enumerate the suite's application-input pairs without simulating.
func ExamplePairs() {
	for _, size := range []speckit.InputSize{speckit.Test, speckit.Train, speckit.Ref} {
		fmt.Printf("%s: %d pairs\n", size, len(speckit.Pairs(speckit.CPU2017(), size)))
	}
	// Output:
	// test: 69 pairs
	// train: 61 pairs
	// ref: 64 pairs
}

// Run the subsetting methodology on a characterized mini-suite.
func ExampleSubset() {
	chars, err := speckit.Characterize(
		speckit.CPU2017().Mini(speckit.RateInt), speckit.Ref,
		speckit.Options{Instructions: 50000})
	if err != nil {
		log.Fatal(err)
	}
	res, err := speckit.Subset(chars, speckit.SubsetOptions{Components: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d pairs -> %d representatives, saving > 0: %v\n",
		len(chars), len(res.Representatives), res.Saving() > 0)
	// Output:
	// 20 pairs -> 9 representatives, saving > 0: true
}

// Detect phases in a two-phase composite workload.
func ExampleDetectPhases() {
	apps := speckit.CPU2017()
	var a, b *speckit.Workload
	for _, app := range apps {
		switch app.Name {
		case "525.x264_r":
			a = app
		case "505.mcf_r":
			b = app
		}
	}
	src, err := speckit.NewPhasedWorkload([]speckit.PhaseSegment{
		{Model: speckit.Pairs(speckit.Suite{a}, speckit.Ref)[0].Model, Instr: 12000},
		{Model: speckit.Pairs(speckit.Suite{b}, speckit.Ref)[0].Model, Instr: 12000},
	})
	if err != nil {
		log.Fatal(err)
	}
	intervals, err := speckit.SliceIntervals(src, 4000, 24)
	if err != nil {
		log.Fatal(err)
	}
	res, err := speckit.DetectPhases(intervals, speckit.PhaseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phases=%d speedup=%.0fx\n", res.K, res.SpeedupFactor())
	// Output:
	// phases=2 speedup=12x
}
