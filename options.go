package speckit

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
)

// Option configures a characterization campaign functionally. Options
// compose left to right over the zero Options value:
//
//	chars, err := speckit.CPU2017().Characterize(speckit.Ref,
//	        speckit.WithInstructions(300000),
//	        speckit.WithCache(speckit.NewCache()),
//	        speckit.WithTrace(tr))
//
// The Options struct remains supported for existing callers; Option is
// the preferred surface for new code because added knobs never break
// composite literals.
type Option func(*Options)

// NewOptions composes opts over the zero Options value. Use it when an
// API takes the struct form (e.g. server.Config.Characterize).
func NewOptions(opts ...Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithContext attaches a cancellation context: campaigns abort between
// pairs when ctx is cancelled (Ctrl-C handling in the cmd tools).
func WithContext(ctx context.Context) Option {
	return func(o *Options) { o.Context = ctx }
}

// WithInstructions sets the simulated instruction window per pair.
func WithInstructions(n uint64) Option {
	return func(o *Options) { o.Instructions = n }
}

// WithParallelism bounds concurrent pair simulations (default NumCPU).
func WithParallelism(n int) Option {
	return func(o *Options) { o.Parallelism = n }
}

// WithIntraPairParallelism splits each pair's measured stream into n
// windows simulated concurrently and stitched with the frozen-cache
// warm-state technique — the knob that scales a single large pair past
// one core where WithParallelism maxes out at the number of pairs.
// Results are a tolerance-gated estimate of the sequential run,
// bit-reproducible for a fixed n and keyed separately in every cache
// tier. Exact-tier only: the sampled and analytic tiers normalize the
// knob away. n <= 1 selects the sequential kernel.
func WithIntraPairParallelism(n int) Option {
	return func(o *Options) { o.IntraPairWorkers = n }
}

// WithMachine selects the simulated machine model.
func WithMachine(m MachineConfig) Option {
	return func(o *Options) { o.Machine = m }
}

// WithBatchSize sets the simulation kernel batch size in uops (0 =
// default; results are batch-size independent).
func WithBatchSize(n int) Option {
	return func(o *Options) { o.BatchSize = n }
}

// WithCache attaches a memoizing result cache shared across campaigns.
func WithCache(c *Cache) Option {
	return func(o *Options) { o.Cache = c }
}

// WithStore attaches a persistent content-addressed store as the
// write-through second cache tier.
func WithStore(st *Store) Option {
	return func(o *Options) { o.Store = st }
}

// WithSampling sets the systematic-sampling fidelity knob.
func WithSampling(s Sampling) Option {
	return func(o *Options) { o.Sampling = s }
}

// WithScenario applies a complete measurement scenario — fidelity tier,
// sampling knob, intra-pair parallelism, rate-mode copy count and
// machine topology — in one step, overwriting whatever those five knobs
// were before. It is the composed form of WithFidelity, WithSampling,
// WithIntraPairParallelism, WithRateCopies and WithTopology; prefer it
// when the scenario arrives as one value (a -scenario flag, a campaign
// spec's scenario object).
func WithScenario(s Scenario) Option {
	return func(o *Options) { *o = s.Apply(*o) }
}

// WithRateCopies characterizes each pair as a SPECrate-style run: n
// copies of the workload on identical cores with private L1/L2
// contending on one shared inclusive L3, reported with per-copy and
// aggregate throughput plus shared-level contention stats
// (Characteristics.Rate). Keyed separately in every cache tier;
// exact-tier only. n <= 1 selects the ordinary single-copy run.
func WithRateCopies(n int) Option {
	return func(o *Options) { o.RateCopies = n }
}

// WithTopology runs each pair on a heterogeneous P-core/E-core machine
// under the topology's OS-placement policy; non-deterministic policies
// (random) yield a runtime distribution (Characteristics.Runtime)
// instead of a point estimate. Keyed separately in every cache tier;
// exact-tier only; composes with WithRateCopies.
func WithTopology(t Topology) Option {
	return func(o *Options) { o.Topology = t }
}

// WithFidelity selects the simulation tier (exact, sampled, analytic).
func WithFidelity(f Fidelity) Option {
	return func(o *Options) { o.Fidelity = f }
}

// WithProgress registers a campaign progress callback, invoked after
// each completed pair.
func WithProgress(fn func(Progress)) Option {
	return func(o *Options) { o.Progress = fn }
}

// WithTrace records the campaign into tr: a span tree of campaign →
// pair → simulation stages, with cache-tier outcomes, renderable as a
// JSONL run manifest. Tracing never affects cache identity — results
// are bit-identical with and without it.
func WithTrace(tr *Trace) Option {
	return func(o *Options) { o.Trace = tr }
}

// Characterize expands the suite into application-input pairs at the
// given input size and simulates each — the functional-options form of
// the package-level Characterize.
func (s Suite) Characterize(size InputSize, opts ...Option) ([]Characteristics, error) {
	return core.CharacterizeSuites([]*profile.Profile(s), size, NewOptions(opts...))
}

// Trace collects a campaign's span tree — campaign, per-pair, and
// simulation-stage timings plus cache-tier outcomes — for Options.Trace
// / WithTrace. One Trace can record several campaigns; render it with
// WriteManifest once they finish.
type Trace = obs.Trace

// NewTrace returns an empty run trace.
func NewTrace() *Trace { return obs.NewTrace() }

// ManifestHeader is the first line of a JSONL run manifest.
type ManifestHeader = obs.ManifestHeader

// ManifestSpan is one recorded span in a JSONL run manifest.
type ManifestSpan = obs.ManifestSpan

// ReadManifest parses and validates a JSONL run manifest.
func ReadManifest(r io.Reader) (ManifestHeader, []ManifestSpan, error) {
	return obs.ReadManifest(r)
}

// ManifestDigest returns the sha256 hex digest of a rendered manifest —
// the identity under which specserved reports campaign runs.
func ManifestDigest(manifest []byte) string { return obs.ManifestDigest(manifest) }
