package speckit

import (
	"encoding/json"
	"os"
	"testing"
)

// serveBaselines mirrors BENCH_serve.json: the trajectory of recorded
// specload runs plus the acceptance floors the latest entries must
// clear.
type serveBaselines struct {
	Trajectory []struct {
		Label     string  `json:"label"`
		Mode      string  `json:"mode"`
		Unique    bool    `json:"unique"`
		Errors    int     `json:"errors"`
		Pairs     int     `json:"total_pairs"`
		P99S      float64 `json:"p99_s"`
		PairsPerS float64 `json:"pairs_per_s"`
		Cells     int     `json:"cells"`
		CellsPerS float64 `json:"cells_per_s"`
		Screen    *struct {
			Cells int `json:"cells"`
		} `json:"screen_cell_latency"`
		Escalate *struct {
			Cells int `json:"cells"`
		} `json:"escalate_cell_latency"`
	} `json:"trajectory"`
	Floors map[string]float64 `json:"floors"`
}

// TestServeBenchBaselines gates the serving-tier baselines recorded in
// BENCH_serve.json: the latest cold-scatter run (unique campaigns, every
// pair simulated on the fleet) must clear the scatter throughput floor
// and p99 ceiling, and the latest warm run (repeat campaigns, served
// from the coordinator's store) must clear the far higher served floors.
// Like the kernel gate, it checks recorded numbers — not live timings a
// loaded CI machine would flake — so a serving regression is caught at
// re-record time and a stale record that never met the floors is caught
// on every run (fleet-smoke drives a live fleet for liveness).
func TestServeBenchBaselines(t *testing.T) {
	raw, err := os.ReadFile("BENCH_serve.json")
	if err != nil {
		t.Fatalf("reading baselines: %v", err)
	}
	var b serveBaselines
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parsing BENCH_serve.json: %v", err)
	}
	floor := func(name string) float64 {
		f, ok := b.Floors[name]
		if !ok || f <= 0 {
			t.Fatalf("BENCH_serve.json missing floor %q", name)
		}
		return f
	}
	// Latest entry per mode wins: the trajectory accumulates, the gate
	// tracks the most recent record of each kind. Sweep-mode entries
	// form their own kind — they report cells, not pairs, so folding
	// them into the campaign gates would compare zeros to pair floors.
	latest := map[bool]int{true: -1, false: -1}
	latestSweep := -1
	for i, e := range b.Trajectory {
		if e.Mode == "sweeps" {
			latestSweep = i
			continue
		}
		latest[e.Unique] = i
	}
	checks := []struct {
		mode       string
		unique     bool
		minPairsPS string
		maxP99     string
	}{
		{"scatter", true, "scatter_pairs_per_s_min", "scatter_p99_s_max"},
		{"served", false, "served_pairs_per_s_min", "served_p99_s_max"},
	}
	for _, c := range checks {
		i := latest[c.unique]
		if i < 0 {
			t.Errorf("BENCH_serve.json has no %s (unique=%v) trajectory entry", c.mode, c.unique)
			continue
		}
		e := b.Trajectory[i]
		if e.Errors != 0 {
			t.Errorf("%s entry %q recorded %d campaign errors, want 0", c.mode, e.Label, e.Errors)
		}
		if e.Pairs <= 0 {
			t.Errorf("%s entry %q served no pairs", c.mode, e.Label)
		}
		if want := floor(c.minPairsPS); e.PairsPerS < want {
			t.Errorf("%s: recorded %.1f pairs/s below floor %.1f", c.mode, e.PairsPerS, want)
		} else {
			t.Logf("%s: %.1f pairs/s (floor %.1f)", c.mode, e.PairsPerS, want)
		}
		if max := floor(c.maxP99); e.P99S > max {
			t.Errorf("%s: recorded p99 %.3fs above ceiling %.3fs", c.mode, e.P99S, max)
		} else {
			t.Logf("%s: p99 %.3fs (ceiling %.3fs)", c.mode, e.P99S, max)
		}
	}

	// The latest sweep run must clear the cell-throughput floor and
	// carry the per-phase latency split the report exists to expose
	// (escalation was on, so both phases observed cells).
	if latestSweep < 0 {
		t.Error("BENCH_serve.json has no sweep-mode trajectory entry")
		return
	}
	e := b.Trajectory[latestSweep]
	if e.Errors != 0 {
		t.Errorf("sweep entry %q recorded %d errors, want 0", e.Label, e.Errors)
	}
	if want := floor("sweep_cells_per_s_min"); e.CellsPerS < want {
		t.Errorf("sweep: recorded %.1f cells/s below floor %.1f", e.CellsPerS, want)
	} else {
		t.Logf("sweep: %.1f cells/s (floor %.1f)", e.CellsPerS, want)
	}
	if e.Screen == nil || e.Screen.Cells <= 0 {
		t.Error("sweep entry lacks screen-phase cell latency quantiles")
	}
	if e.Escalate == nil || e.Escalate.Cells <= 0 {
		t.Error("sweep entry lacks escalate-phase cell latency quantiles")
	}
	if e.Screen != nil && e.Escalate != nil && e.Screen.Cells+e.Escalate.Cells != e.Cells {
		t.Errorf("sweep phase cells %d+%d do not cover the %d recorded cells",
			e.Screen.Cells, e.Escalate.Cells, e.Cells)
	}
}
