// Command specphase demonstrates the paper's future-work direction: phase
// analysis of workload streams to identify simulation points. It builds a
// phased workload alternating between two SPEC application models, slices
// it into intervals, detects phases, and reports the simulation points
// with their weights and the simulation-time saving.
//
// Usage:
//
//	specphase [-a 525.x264_r] [-b 505.mcf_r] [-interval 5000] [-intervals 24]
//	          [-stride 0] [-progress]
//
// Ctrl-C (or SIGTERM) aborts the pipeline between stages rather than
// killing the process mid-write.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	speckit "repro"
	"repro/internal/cliflags"
	"repro/internal/phase"
	"repro/internal/profile"
	"repro/internal/report"
)

func main() {
	aFlag := flag.String("a", "525.x264_r", "first phase application")
	bFlag := flag.String("b", "505.mcf_r", "second phase application")
	ilen := flag.Uint64("interval", 5000, "instructions per interval")
	n := flag.Int("intervals", 24, "intervals to analyze")
	stride := flag.Uint64("stride", 0, "sampled slicing: space interval starts this many instructions apart, fast-forwarding the gaps (0 = back-to-back, must otherwise be >= -interval); covers a stride/interval-times-longer stretch of the stream at the same cost")
	progressFlag := flag.Bool("progress", false, "print stage progress to stderr")
	flag.Parse()
	ctx, stop := cliflags.SignalContext()
	defer stop()
	if err := run(ctx, *aFlag, *bFlag, *ilen, *stride, *n, *progressFlag); err != nil {
		fmt.Fprintln(os.Stderr, "specphase:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, aName, bName string, intervalLen, stride uint64, n int, progress bool) error {
	// specphase has no pair campaign to meter, so -progress reports the
	// coarse pipeline stages instead. The phase pipeline has no Context
	// option of its own, so cancellation is checked between stages.
	stage := func(format string, args ...interface{}) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if progress {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		return nil
	}
	a, err := findApp(aName)
	if err != nil {
		return err
	}
	b, err := findApp(bName)
	if err != nil {
		return err
	}
	segLen := intervalLen * 3 // three intervals per phase leg
	if err := stage("building phased workload %s <-> %s", aName, bName); err != nil {
		return err
	}
	src, err := speckit.NewPhasedWorkload([]speckit.PhaseSegment{
		{Model: a.Expand(profile.Ref)[0].Model, Instr: segLen},
		{Model: b.Expand(profile.Ref)[0].Model, Instr: segLen},
	})
	if err != nil {
		return err
	}
	fmt.Printf("phased workload: %s <-> %s, %d instructions per leg\n\n", aName, bName, segLen)

	if stride == 0 {
		stride = intervalLen
	}
	if err := stage("slicing %d intervals of %d instructions (stride %d)", n, intervalLen, stride); err != nil {
		return err
	}
	intervals, err := speckit.SliceIntervalsSampled(src, intervalLen, stride, n)
	if err != nil {
		return err
	}
	if err := stage("detecting phases"); err != nil {
		return err
	}
	res, err := speckit.DetectPhases(intervals, speckit.PhaseOptions{})
	if err != nil {
		return err
	}

	fmt.Printf("detected %d phases over %d intervals (coverage error %.3f, %.1fx simulation saving)\n\n",
		res.K, n, res.CoverageError, res.SpeedupFactor())

	t := report.NewTable("Phases", "Phase", "Weight", "Sim point (interval)", "Members")
	for i, p := range res.Phases {
		t.AddRowf(i, p.Weight, p.Representative, len(p.Intervals))
	}
	if err := t.WriteText(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	sig := report.NewTable("Phase centroids", append([]string{"Component"}, phaseLabels(res)...)...)
	for j, name := range phase.Names() {
		cells := []interface{}{name}
		for _, p := range res.Phases {
			cells = append(cells, p.Centroid[j])
		}
		sig.AddRowf(cells...)
	}
	if err := sig.WriteText(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\ninterval -> phase timeline:")
	for _, p := range res.Assign {
		fmt.Printf("%d", p)
	}
	fmt.Println()
	return nil
}

func phaseLabels(res *speckit.PhaseResult) []string {
	labels := make([]string, len(res.Phases))
	for i := range res.Phases {
		labels[i] = fmt.Sprintf("phase %d", i)
	}
	return labels
}

func findApp(name string) (*speckit.Workload, error) {
	for _, p := range speckit.CPU2017() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("unknown application %q", name)
}
