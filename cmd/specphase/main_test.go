package main

import "testing"

func TestFindApp(t *testing.T) {
	if _, err := findApp("505.mcf_r"); err != nil {
		t.Errorf("known app rejected: %v", err)
	}
	if _, err := findApp("999.nothing"); err == nil {
		t.Error("unknown app accepted")
	}
}

// TestRunSmoke drives the phase tool end to end.
func TestRunSmoke(t *testing.T) {
	if err := run("525.x264_r", "505.mcf_r", 3000, 12, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run("nope", "505.mcf_r", 3000, 12, false); err == nil {
		t.Error("unknown app accepted")
	}
}
