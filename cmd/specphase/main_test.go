package main

import (
	"context"
	"errors"
	"testing"
)

func TestFindApp(t *testing.T) {
	if _, err := findApp("505.mcf_r"); err != nil {
		t.Errorf("known app rejected: %v", err)
	}
	if _, err := findApp("999.nothing"); err == nil {
		t.Error("unknown app accepted")
	}
}

// TestRunSmoke drives the phase tool end to end, back-to-back and with
// a sampled stride, and rejects bad inputs.
func TestRunSmoke(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, "525.x264_r", "505.mcf_r", 3000, 0, 12, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(ctx, "525.x264_r", "505.mcf_r", 3000, 9000, 12, false); err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	if err := run(ctx, "nope", "505.mcf_r", 3000, 0, 12, false); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run(ctx, "525.x264_r", "505.mcf_r", 3000, 1000, 12, false); err == nil {
		t.Error("stride shorter than interval accepted")
	}
}

// TestRunCancelledContext: a pre-cancelled context (as Ctrl-C produces)
// aborts the pipeline between stages.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, "525.x264_r", "505.mcf_r", 3000, 0, 12, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
