// Command specchar characterizes a SPEC suite on the simulated machine
// and prints per-pair metrics plus suite summaries, mirroring the paper's
// Section IV measurement campaign.
//
// Usage:
//
//	specchar [-suite cpu2017|cpu2006] [-mini all|rate-int|rate-fp|speed-int|speed-fp]
//	         [-size test|train|ref] [-n instructions] [-csv] [-progress]
//	         [-cache-dir DIR] [-sampling off|default|P/D/W] [-j N]
//	         [-scenario S | -rate N | -topo T]
//	         [-trace FILE] [-slow-pair DUR]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// -trace writes the campaign's span tree (campaign -> pair -> simulation
// stages, with cache-tier outcomes) as a JSONL run manifest; -slow-pair
// warns about pairs whose wall time exceeds the threshold.
//
// -rate N characterizes each pair as a SPECrate-style run of N copies
// contending on the shared L3 and appends a contention table
// (aggregate IPC, shared-L3 MPKI, back-invalidations); -topo runs each
// pair on a heterogeneous P/E topology ("4P4E-random") and appends the
// placement runtime distribution. -scenario expresses the whole
// measurement scenario in one string ("exact,rate=4,topo=4P4E-random")
// and replaces the individual knob flags.
//
// Ctrl-C (or SIGTERM) cancels the in-flight campaign through the
// scheduler's context path rather than killing the process mid-write.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	speckit "repro"
	"repro/internal/cliflags"
	"repro/internal/report"
)

// config collects the tool's flags; the embedded Campaign carries the
// ones shared across the speckit tools.
type config struct {
	suite, mini, size      string
	n                      uint64
	csv                    bool
	cpuprofile, memprofile string
	cliflags.Campaign
}

func main() {
	var cfg config
	flag.StringVar(&cfg.suite, "suite", "cpu2017", "suite to characterize: cpu2017 or cpu2006")
	flag.StringVar(&cfg.mini, "mini", "all", "mini-suite filter: all, rate-int, rate-fp, speed-int, speed-fp")
	flag.StringVar(&cfg.size, "size", "ref", "input size: test, train or ref")
	flag.Uint64Var(&cfg.n, "n", 300000, "simulated instructions per pair")
	flag.BoolVar(&cfg.csv, "csv", false, "emit CSV instead of aligned text")
	cfg.Campaign.Register(flag.CommandLine)
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a pprof CPU profile of the campaign to FILE")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a pprof heap profile to FILE when the campaign finishes")
	flag.Parse()

	ctx, stop := cliflags.SignalContext()
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "specchar:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg config) error {
	if cfg.cpuprofile != "" {
		f, err := os.Create(cfg.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.memprofile != "" {
		defer func() {
			f, err := os.Create(cfg.memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "specchar: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "specchar: memprofile:", err)
			}
		}()
	}
	suite, err := pickSuite(cfg.suite)
	if err != nil {
		return err
	}
	if suite, err = filterMini(suite, cfg.mini); err != nil {
		return err
	}
	size, err := pickSize(cfg.size)
	if err != nil {
		return err
	}
	opt, err := cfg.Campaign.Options(ctx)
	if err != nil {
		return err
	}
	opt.Instructions = cfg.n
	chars, err := speckit.Characterize(suite, size, opt)
	if err != nil {
		return err
	}
	if err := cfg.Campaign.Finish(); err != nil {
		return err
	}
	sampling := cfg.SamplingKnob()

	t := report.NewTable(
		fmt.Sprintf("Characterization of %s (%s inputs, %d pairs)", cfg.suite, cfg.size, len(chars)),
		"Pair", "Instr (B)", "IPC", "Time (s)", "%Loads", "%Stores", "%Branches",
		"Misp%", "L1%", "L2%", "L3%", "RSS (MiB)", "VSZ (MiB)")
	uncalibrated := 0
	for i := range chars {
		c := &chars[i]
		name := c.Pair.Name()
		execTime := interface{}(c.ExecSeconds)
		if !c.Calibrated {
			// Mark rows whose IPC target was unreachable; a degenerate
			// rate also zeroes ExecSeconds, so render it as unavailable
			// rather than as a misleading 0.000.
			name += " *"
			uncalibrated++
			if c.ExecSeconds == 0 {
				execTime = "n/a"
			}
		}
		t.AddRowf(name, c.InstrBillions, c.IPC, execTime,
			c.LoadPct, c.StorePct, c.BranchPct, c.MispredictPct,
			c.L1MissPct, c.L2MissPct, c.L3MissPct, c.RSSMiB, c.VSZMiB)
	}
	if cfg.csv {
		if err := t.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else {
		if err := t.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if uncalibrated > 0 {
		fmt.Printf("* %d pair(s) did not reach the model's IPC target (uncalibrated)\n", uncalibrated)
	}
	if sampling.Enabled() {
		// Surface the extrapolation-error estimate so sampled tables are
		// never mistaken for exact ones.
		worst := 0.0
		for i := range chars {
			if sp := chars[i].Sampling; sp != nil {
				for _, e := range []float64{sp.IPCRelErr, sp.L1RelErr, sp.L2RelErr, sp.L3RelErr, sp.MispredictRelErr} {
					if e > worst {
						worst = e
					}
				}
			}
		}
		fmt.Printf("sampled run (knob %s): metrics are extrapolated estimates, worst per-metric relative standard error %.1f%%\n",
			sampling, 100*worst)
	}

	if err := writeRateTable(chars, cfg.csv); err != nil {
		return err
	}
	if err := writeRuntimeTable(chars, cfg.csv); err != nil {
		return err
	}

	fmt.Println()
	sum := report.NewTable("Suite aggregates (per-application means)",
		"Metric", "Mean", "StdDev")
	metrics := []struct {
		name string
		pick func(*speckit.Characteristics) float64
	}{
		{"IPC", func(c *speckit.Characteristics) float64 { return c.IPC }},
		{"% Loads", func(c *speckit.Characteristics) float64 { return c.LoadPct }},
		{"% Stores", func(c *speckit.Characteristics) float64 { return c.StorePct }},
		{"% Branches", func(c *speckit.Characteristics) float64 { return c.BranchPct }},
		{"Mispredict %", func(c *speckit.Characteristics) float64 { return c.MispredictPct }},
		{"L1 miss %", func(c *speckit.Characteristics) float64 { return c.L1MissPct }},
		{"L2 miss %", func(c *speckit.Characteristics) float64 { return c.L2MissPct }},
		{"L3 miss %", func(c *speckit.Characteristics) float64 { return c.L3MissPct }},
		{"RSS (MiB)", func(c *speckit.Characteristics) float64 { return c.RSSMiB }},
	}
	for _, m := range metrics {
		s := speckit.Aggregate(chars, m.pick)
		sum.AddRowf(m.name, s.Mean, s.Std)
	}
	return sum.WriteText(os.Stdout)
}

// writeRateTable prints the shared-L3 contention table when the
// campaign ran in rate mode (Characteristics.Rate set).
func writeRateTable(chars []speckit.Characteristics, csv bool) error {
	any := false
	for i := range chars {
		if chars[i].Rate != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	fmt.Println()
	t := report.NewTable("Rate-mode contention (shared L3)",
		"Pair", "Copies", "Agg IPC", "Per-copy IPC", "L3 MPKI", "Back-inv")
	for i := range chars {
		c := &chars[i]
		if c.Rate == nil {
			continue
		}
		perCopy := 0.0
		for _, v := range c.Rate.PerCopyIPC {
			perCopy += v
		}
		if n := len(c.Rate.PerCopyIPC); n > 0 {
			perCopy /= float64(n)
		}
		t.AddRowf(c.Pair.Name(), c.Rate.Copies, c.Rate.AggregateIPC,
			perCopy, c.Rate.SharedL3MPKI, c.Rate.BackInvalidations)
	}
	if csv {
		return t.WriteCSV(os.Stdout)
	}
	return t.WriteText(os.Stdout)
}

// writeRuntimeTable prints the placement runtime distribution when the
// campaign ran on a heterogeneous topology (Characteristics.Runtime
// set): one row per (pair, mode), so a random placement's multimodal
// runtime is visible directly.
func writeRuntimeTable(chars []speckit.Characteristics, csv bool) error {
	any := false
	for i := range chars {
		if chars[i].Runtime != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	fmt.Println()
	t := report.NewTable("Placement runtime distribution",
		"Pair", "Topology", "Core class", "Weight", "Time (s)", "IPC")
	for i := range chars {
		c := &chars[i]
		if c.Runtime == nil {
			continue
		}
		for _, m := range c.Runtime.Modes {
			t.AddRowf(c.Pair.Name(), c.Runtime.Topology, m.Class,
				m.Weight, m.ExecSeconds, m.IPC)
		}
	}
	if csv {
		return t.WriteCSV(os.Stdout)
	}
	return t.WriteText(os.Stdout)
}

func pickSuite(name string) (speckit.Suite, error) {
	switch strings.ToLower(name) {
	case "cpu2017", "cpu17":
		return speckit.CPU2017(), nil
	case "cpu2006", "cpu06":
		return speckit.CPU2006(), nil
	default:
		return nil, fmt.Errorf("unknown suite %q", name)
	}
}

func filterMini(s speckit.Suite, mini string) (speckit.Suite, error) {
	switch strings.ToLower(mini) {
	case "all", "":
		return s, nil
	case "rate-int":
		return s.Mini(speckit.RateInt), nil
	case "rate-fp":
		return s.Mini(speckit.RateFP), nil
	case "speed-int":
		return s.Mini(speckit.SpeedInt), nil
	case "speed-fp":
		return s.Mini(speckit.SpeedFP), nil
	default:
		return nil, fmt.Errorf("unknown mini-suite %q", mini)
	}
}

func pickSize(name string) (speckit.InputSize, error) {
	switch strings.ToLower(name) {
	case "test":
		return speckit.Test, nil
	case "train":
		return speckit.Train, nil
	case "ref":
		return speckit.Ref, nil
	default:
		return speckit.Ref, fmt.Errorf("unknown input size %q", name)
	}
}
