package main

import "testing"

func TestPickSuite(t *testing.T) {
	for _, name := range []string{"cpu2017", "CPU17", "cpu2006", "cpu06"} {
		if _, err := pickSuite(name); err != nil {
			t.Errorf("pickSuite(%q): %v", name, err)
		}
	}
	if _, err := pickSuite("spec95"); err == nil {
		t.Error("unknown suite accepted")
	}
}

func TestFilterMini(t *testing.T) {
	suite, _ := pickSuite("cpu2017")
	counts := map[string]int{
		"all": 43, "rate-int": 10, "rate-fp": 13, "speed-int": 10, "speed-fp": 10,
	}
	for mini, want := range counts {
		got, err := filterMini(suite, mini)
		if err != nil {
			t.Fatalf("filterMini(%q): %v", mini, err)
		}
		if len(got) != want {
			t.Errorf("filterMini(%q) = %d apps, want %d", mini, len(got), want)
		}
	}
	if _, err := filterMini(suite, "rate-complex"); err == nil {
		t.Error("unknown mini accepted")
	}
}

func TestPickSize(t *testing.T) {
	for _, name := range []string{"test", "train", "ref", "REF"} {
		if _, err := pickSize(name); err != nil {
			t.Errorf("pickSize(%q): %v", name, err)
		}
	}
	if _, err := pickSize("huge"); err == nil {
		t.Error("unknown size accepted")
	}
}

// TestRunSmoke drives the tool end to end on a small mini-suite.
func TestRunSmoke(t *testing.T) {
	if err := run("cpu2017", "rate-int", "test", 15000, false, false, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run("cpu2006", "all", "ref", 10000, true, true, 256); err != nil {
		t.Fatalf("csv run: %v", err)
	}
	if err := run("bogus", "all", "ref", 1000, false, false, 0); err == nil {
		t.Error("bogus suite accepted")
	}
}
