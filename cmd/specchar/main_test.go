package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	speckit "repro"
	"repro/internal/cliflags"
)

func TestPickSuite(t *testing.T) {
	for _, name := range []string{"cpu2017", "CPU17", "cpu2006", "cpu06"} {
		if _, err := pickSuite(name); err != nil {
			t.Errorf("pickSuite(%q): %v", name, err)
		}
	}
	if _, err := pickSuite("spec95"); err == nil {
		t.Error("unknown suite accepted")
	}
}

func TestFilterMini(t *testing.T) {
	suite, _ := pickSuite("cpu2017")
	counts := map[string]int{
		"all": 43, "rate-int": 10, "rate-fp": 13, "speed-int": 10, "speed-fp": 10,
	}
	for mini, want := range counts {
		got, err := filterMini(suite, mini)
		if err != nil {
			t.Fatalf("filterMini(%q): %v", mini, err)
		}
		if len(got) != want {
			t.Errorf("filterMini(%q) = %d apps, want %d", mini, len(got), want)
		}
	}
	if _, err := filterMini(suite, "rate-complex"); err == nil {
		t.Error("unknown mini accepted")
	}
}

func TestPickSize(t *testing.T) {
	for _, name := range []string{"test", "train", "ref", "REF"} {
		if _, err := pickSize(name); err != nil {
			t.Errorf("pickSize(%q): %v", name, err)
		}
	}
	if _, err := pickSize("huge"); err == nil {
		t.Error("unknown size accepted")
	}
}

// TestRunSmoke drives the tool end to end on a small mini-suite.
func TestRunSmoke(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, config{suite: "cpu2017", mini: "rate-int", size: "test", n: 15000}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(ctx, config{suite: "cpu2006", mini: "all", size: "ref", n: 10000, csv: true,
		Campaign: cliflags.Campaign{Progress: true, Batch: 256}}); err != nil {
		t.Fatalf("csv run: %v", err)
	}
	if err := run(ctx, config{suite: "bogus", mini: "all", size: "ref", n: 1000}); err == nil {
		t.Error("bogus suite accepted")
	}
}

// TestRunCacheDir: a second run against the same -cache-dir is served
// from the persistent store and produces the same output.
func TestRunCacheDir(t *testing.T) {
	dir := t.TempDir()
	cfg := config{suite: "cpu2017", mini: "rate-int", size: "test", n: 10000,
		Campaign: cliflags.Campaign{CacheDir: dir}}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatalf("store-served run: %v", err)
	}
}

// TestRunCancelledContext: a pre-cancelled context (as Ctrl-C produces)
// aborts the campaign with the context's error instead of running it.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, config{suite: "cpu2017", mini: "rate-int", size: "test", n: 10000})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunTraceManifest is the observability acceptance gate: a sampled
// campaign run with -trace must produce a valid JSONL manifest whose
// per-pair span durations account (within tolerance) for the campaign
// wall time when pairs run sequentially.
func TestRunTraceManifest(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "run.jsonl")
	cfg := config{
		suite: "cpu2017", mini: "rate-int", size: "test", n: 1000000,
		Campaign: cliflags.Campaign{
			TraceFile:   traceFile,
			Sampling:    "131072/4096/4096",
			Parallelism: 1, // sequential, so pair spans tile the campaign span
		},
	}
	start := time.Now()
	if err := run(context.Background(), cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	wall := time.Since(start)

	manifest, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	header, spans, err := speckit.ReadManifest(bytes.NewReader(manifest))
	if err != nil {
		t.Fatalf("invalid manifest: %v", err)
	}
	if header.Spans != len(spans) {
		t.Fatalf("header declares %d spans, manifest has %d", header.Spans, len(spans))
	}

	var campaign *speckit.ManifestSpan
	var pairSum, campaignDur time.Duration
	pairs := 0
	for i := range spans {
		s := &spans[i]
		switch {
		case s.Name == "campaign":
			campaign = s
			campaignDur = time.Duration(s.DurUS) * time.Microsecond
		case s.Attrs["tier"] != nil:
			pairs++
			pairSum += time.Duration(s.DurUS) * time.Microsecond
			if s.Attrs["tier"] != "simulated" {
				t.Errorf("%s tier = %v, want simulated (cold cache)", s.Name, s.Attrs["tier"])
			}
		}
	}
	if campaign == nil {
		t.Fatal("no campaign root span")
	}
	if pairs != 22 { // rate-int test-size application-input pairs
		t.Fatalf("pair spans = %d, want 22", pairs)
	}
	if campaignDur > wall {
		t.Errorf("campaign span %s exceeds measured wall time %s", campaignDur, wall)
	}
	// Sequential pairs: their spans must account for most of the
	// campaign and can never exceed it (generous floor — scheduling and
	// table rendering live outside the pair spans).
	if pairSum > campaignDur+10*time.Millisecond {
		t.Errorf("pair spans sum to %s, more than the %s campaign", pairSum, campaignDur)
	}
	if pairSum < campaignDur/2 {
		t.Errorf("pair spans sum to %s, under half the %s campaign", pairSum, campaignDur)
	}
}
