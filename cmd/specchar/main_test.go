package main

import (
	"context"
	"errors"
	"testing"
)

func TestPickSuite(t *testing.T) {
	for _, name := range []string{"cpu2017", "CPU17", "cpu2006", "cpu06"} {
		if _, err := pickSuite(name); err != nil {
			t.Errorf("pickSuite(%q): %v", name, err)
		}
	}
	if _, err := pickSuite("spec95"); err == nil {
		t.Error("unknown suite accepted")
	}
}

func TestFilterMini(t *testing.T) {
	suite, _ := pickSuite("cpu2017")
	counts := map[string]int{
		"all": 43, "rate-int": 10, "rate-fp": 13, "speed-int": 10, "speed-fp": 10,
	}
	for mini, want := range counts {
		got, err := filterMini(suite, mini)
		if err != nil {
			t.Fatalf("filterMini(%q): %v", mini, err)
		}
		if len(got) != want {
			t.Errorf("filterMini(%q) = %d apps, want %d", mini, len(got), want)
		}
	}
	if _, err := filterMini(suite, "rate-complex"); err == nil {
		t.Error("unknown mini accepted")
	}
}

func TestPickSize(t *testing.T) {
	for _, name := range []string{"test", "train", "ref", "REF"} {
		if _, err := pickSize(name); err != nil {
			t.Errorf("pickSize(%q): %v", name, err)
		}
	}
	if _, err := pickSize("huge"); err == nil {
		t.Error("unknown size accepted")
	}
}

// TestRunSmoke drives the tool end to end on a small mini-suite.
func TestRunSmoke(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, config{suite: "cpu2017", mini: "rate-int", size: "test", n: 15000}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(ctx, config{suite: "cpu2006", mini: "all", size: "ref", n: 10000, csv: true, progress: true, batch: 256}); err != nil {
		t.Fatalf("csv run: %v", err)
	}
	if err := run(ctx, config{suite: "bogus", mini: "all", size: "ref", n: 1000}); err == nil {
		t.Error("bogus suite accepted")
	}
}

// TestRunCacheDir: a second run against the same -cache-dir is served
// from the persistent store and produces the same output.
func TestRunCacheDir(t *testing.T) {
	dir := t.TempDir()
	cfg := config{suite: "cpu2017", mini: "rate-int", size: "test", n: 10000, cacheDir: dir}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatalf("store-served run: %v", err)
	}
}

// TestRunCancelledContext: a pre-cancelled context (as Ctrl-C produces)
// aborts the campaign with the context's error instead of running it.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, config{suite: "cpu2017", mini: "rate-int", size: "test", n: 10000})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
