// Command specsweep explores the machine design space: it expands
// cartesian axes over cache-hierarchy parameters into a grid of machine
// configurations, characterizes the chosen workloads at every grid
// point (screening at a cheap fidelity tier, escalating the
// Pareto-frontier points to a higher one), and prints the grid plus a
// knee report per swept metric.
//
// Usage:
//
//	specsweep -axis l3.size=1MiB,2MiB,4MiB [-axis l2.size=256KiB,512KiB]
//	          [-suite cpu2017] [-mini rate-int] [-size test] [-n 300000]
//	          [-screen analytic] [-escalate sampled|exact|off]
//	          [-metrics ipc,l3_miss_pct] [-sse-weight 5] [-csv]
//	          [-addr http://host:8217]
//	          [-cache-dir DIR] [-sampling P/D/W] [-j N] [-progress]
//
// Without -addr the sweep runs in-process: the -cache-dir store makes
// it differential, so re-running a sweep (or a wider one sharing grid
// points) simulates only the missing cells. With -addr the sweep is
// submitted to a specserved instance (single node or fleet coordinator)
// over /v1/sweeps and the progress meter follows the server's SSE
// stream.
//
// Axis values accept KiB/MiB/GiB suffixes; known parameters are listed
// by -axis help. Cells simulated vs served from cache are reported on
// stderr after the tables.
//
// Beyond the machine parameters, the scenario pseudo-axis
// "rate.copies" sweeps the rate-mode copy count — each grid cell
// becomes an N-copy shared-L3 contention run — charting the
// contention knee directly:
//
//	specsweep -axis rate.copies=1,2,4,8 -screen exact -escalate off \
//	          -metrics aggregate_ipc,l3_mpki
//
// Rate cells only exist at exact fidelity, so a rate axis requires
// -screen exact and -escalate exact (or off).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/cliflags"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/sweep"
)

type config struct {
	addr              string
	suite, mini, size string
	n                 uint64
	axes              axisFlags
	screen, escalate  string
	metrics           string
	sseWeight         float64
	csv               bool
	cliflags.Campaign
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "submit to this specserved base URL instead of sweeping in-process")
	flag.StringVar(&cfg.suite, "suite", "cpu2017", "suite to sweep: cpu2017 or cpu2006")
	flag.StringVar(&cfg.mini, "mini", "rate-int", "mini-suite filter: all, rate-int, rate-fp, speed-int, speed-fp")
	flag.StringVar(&cfg.size, "size", "test", "input size: test, train or ref")
	flag.Uint64Var(&cfg.n, "n", 300000, "simulated instructions per cell")
	flag.Var(&cfg.axes, "axis", "swept axis as param=v1,v2,... (repeatable; \"-axis help\" lists parameters)")
	flag.StringVar(&cfg.screen, "screen", "analytic", "screening fidelity tier: analytic, sampled or exact")
	flag.StringVar(&cfg.escalate, "escalate", "sampled", "escalation tier for frontier points: sampled, exact, analytic or off")
	flag.StringVar(&cfg.metrics, "metrics", "", "comma-separated swept metrics (default ipc,l3_miss_pct)")
	flag.Float64Var(&cfg.sseWeight, "sse-weight", 0, "knee selection weight on the metric axis (default 5)")
	flag.BoolVar(&cfg.csv, "csv", false, "emit CSV instead of aligned text")
	cfg.Campaign.Register(flag.CommandLine)
	flag.Parse()

	ctx, stop := cliflags.SignalContext()
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "specsweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg config) error {
	if len(cfg.axes) == 0 {
		return fmt.Errorf("no -axis given; known parameters: %s", axisParamList())
	}
	var metrics []string
	if cfg.metrics != "" {
		for _, m := range strings.Split(cfg.metrics, ",") {
			metrics = append(metrics, strings.TrimSpace(m))
		}
	}
	var res *sweep.Result
	var err error
	if cfg.addr != "" {
		res, err = runServer(ctx, cfg, metrics)
	} else {
		res, err = runLocal(ctx, cfg, metrics)
	}
	if err != nil {
		return err
	}
	if err := render(os.Stdout, cfg, res); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "specsweep: %d cells: screen %s", res.Cells, countsLine(res.Screen))
	if res.EscalateTier != "" {
		fmt.Fprintf(os.Stderr, ", escalate(%s) %s", res.EscalateTier, countsLine(res.Escalate))
	}
	fmt.Fprintln(os.Stderr)
	return nil
}

// runLocal sweeps in-process on top of the shared campaign flags
// (cache-dir store tier, sampling knob for the sampled tier, -j).
func runLocal(ctx context.Context, cfg config, metrics []string) (*sweep.Result, error) {
	pairs, err := resolvePairs(cfg.suite, cfg.mini, cfg.size)
	if err != nil {
		return nil, err
	}
	spec := sweep.Spec{
		Axes:      []sweep.Axis(cfg.axes),
		Pairs:     pairs,
		Metrics:   metrics,
		SSEWeight: cfg.sseWeight,
	}
	if spec.Screen, err = machine.ParseFidelity(cfg.screen); err != nil {
		return nil, err
	}
	switch strings.ToLower(cfg.escalate) {
	case "off", "none":
		spec.EscalateOff = true
	default:
		if spec.Escalate, err = machine.ParseFidelity(cfg.escalate); err != nil {
			return nil, err
		}
	}
	opt, err := cfg.Campaign.Options(ctx)
	if err != nil {
		return nil, err
	}
	opt.Instructions = cfg.n
	sweepOpt := sweep.Options{Base: opt}
	if cfg.Progress {
		sweepOpt.Progress = progressMeter()
	}
	res, err := sweep.Run(ctx, spec, sweepOpt)
	if err != nil {
		return nil, err
	}
	return res, cfg.Campaign.Finish()
}

// runServer submits the sweep over /v1/sweeps; with -progress it
// follows the SSE stream, otherwise it waits server-side.
func runServer(ctx context.Context, cfg config, metrics []string) (*sweep.Result, error) {
	cl := client.New(cfg.addr)
	spec := server.SweepSpec{
		Suite: cfg.suite, Mini: cfg.mini, Size: cfg.size,
		Instructions: cfg.n,
		Axes:         []sweep.Axis(cfg.axes),
		Screen:       cfg.screen,
		Escalate:     cfg.escalate,
		Sampling:     cfg.SamplingKnob().String(),
		Metrics:      metrics,
		SSEWeight:    cfg.sseWeight,
	}
	var st server.SweepStatus
	var err error
	if cfg.Progress {
		if st, err = cl.SubmitSweep(ctx, spec); err != nil {
			return nil, err
		}
		meter := progressMeter()
		err = cl.SweepEvents(ctx, st.ID, func(ev client.Event) error {
			if ev.Name == "progress" {
				if p, perr := ev.SweepProgress(); perr == nil {
					meter(p)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if st, err = cl.Sweep(ctx, st.ID, true); err != nil {
			return nil, err
		}
	} else if st, err = cl.SubmitSweepWait(ctx, spec); err != nil {
		return nil, err
	}
	if st.Status != server.StatusDone {
		return nil, fmt.Errorf("sweep %s finished %s: %s", st.ID, st.Status, st.Error)
	}
	if st.Result == nil {
		return nil, fmt.Errorf("sweep %s returned no result", st.ID)
	}
	return st.Result, nil
}

func progressMeter() func(sweep.Progress) {
	return func(p sweep.Progress) {
		fmt.Fprintf(os.Stderr, "\rspecsweep: %-8s points %d/%d  cells %d/%d   ",
			p.Phase, p.PointsDone, p.PointsTotal, p.CellsDone, p.CellsTotal)
		if p.CellsDone == p.CellsTotal {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// render prints the grid table and one knee table per swept metric.
func render(w io.Writer, cfg config, res *sweep.Result) error {
	metrics := make([]string, 0, len(res.Knees))
	for _, k := range res.Knees {
		metrics = append(metrics, k.Metric)
	}
	escalated := res.EscalateTier != ""

	headers := []string{"Point", "Cost"}
	for _, m := range metrics {
		headers = append(headers, m)
		if escalated {
			headers = append(headers, m+" ("+res.EscalateTier+")")
		}
	}
	headers = append(headers, "Frontier")
	grid := report.NewTable(
		fmt.Sprintf("Design-space grid (%d points, screen tier %s)", len(res.Points), res.ScreenTier),
		headers...)
	for i := range res.Points {
		pt := &res.Points[i]
		row := []any{pt.Label, formatBytes(pt.CostBytes)}
		for _, m := range metrics {
			row = append(row, pt.Metrics[m])
			if escalated {
				if v, ok := pt.Escalated[m]; ok {
					row = append(row, v)
				} else {
					row = append(row, "-")
				}
			}
		}
		mark := ""
		if pt.Frontier {
			mark = "*"
		}
		row = append(row, mark)
		grid.AddRowf(row...)
	}
	tables := []*report.Table{grid}

	for _, k := range res.Knees {
		dir := "minimize"
		if k.Maximize {
			dir = "maximize"
		}
		t := report.NewTable(
			fmt.Sprintf("Knee report: %s (%s, sse-weight %g) -> %s", k.Metric, dir, k.SSEWeight, k.Knee),
			"Frontier point", "Value", "Screen value", "Cost", "Escalated", "Knee")
		for _, p := range k.Points {
			knee := ""
			if p.Knee {
				knee = "<=="
			}
			esc := ""
			if p.Escalated {
				esc = "yes"
			}
			t.AddRowf(p.Label, p.Value, p.ScreenValue, formatBytes(p.CostBytes), esc, knee)
		}
		tables = append(tables, t)
	}

	for i, t := range tables {
		if i > 0 && !cfg.csv {
			fmt.Fprintln(w)
		}
		var err error
		if cfg.csv {
			err = t.WriteCSV(w)
		} else {
			err = t.WriteText(w)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func countsLine(c sweep.CellCounts) string {
	return fmt.Sprintf("simulated=%d memory=%d store=%d remote=%d", c.Simulated, c.Memory, c.Store, c.Remote)
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", b>>10)
	default:
		return strconv.FormatInt(b, 10)
	}
}

func resolvePairs(suite, mini, size string) ([]profile.Pair, error) {
	var apps []*profile.Profile
	switch strings.ToLower(suite) {
	case "cpu2017", "cpu17":
		apps = profile.CPU2017()
	case "cpu2006", "cpu06":
		apps = profile.CPU2006()
	default:
		return nil, fmt.Errorf("unknown suite %q", suite)
	}
	var filter profile.Suite
	switch strings.ToLower(mini) {
	case "all", "":
	case "rate-int":
		filter = profile.RateInt
	case "rate-fp":
		filter = profile.RateFP
	case "speed-int":
		filter = profile.SpeedInt
	case "speed-fp":
		filter = profile.SpeedFP
	default:
		return nil, fmt.Errorf("unknown mini-suite %q", mini)
	}
	var in profile.InputSize
	switch strings.ToLower(size) {
	case "test":
		in = profile.Test
	case "train":
		in = profile.Train
	case "ref":
		in = profile.Ref
	default:
		return nil, fmt.Errorf("unknown input size %q", size)
	}
	var pairs []profile.Pair
	for _, app := range apps {
		if filter != 0 && app.Suite != filter {
			continue
		}
		pairs = append(pairs, app.Expand(in)...)
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("no workload pairs match %s/%s/%s", suite, mini, size)
	}
	return pairs, nil
}

// axisParamList names every -axis parameter: the machine axes plus the
// rate-mode scenario pseudo-axis.
func axisParamList() string {
	return strings.Join(append(machine.AxisParams(), sweep.RateAxis), ", ")
}

// axisFlags collects repeatable -axis param=v1,v2,... flags.
type axisFlags []sweep.Axis

func (a *axisFlags) String() string {
	parts := make([]string, len(*a))
	for i, ax := range *a {
		vals := make([]string, len(ax.Values))
		for j, v := range ax.Values {
			vals[j] = sweep.FormatAxisValue(ax.Param, v)
		}
		parts[i] = ax.Param + "=" + strings.Join(vals, ",")
	}
	return strings.Join(parts, " ")
}

func (a *axisFlags) Set(s string) error {
	if s == "help" {
		return fmt.Errorf("known axis parameters: %s", axisParamList())
	}
	ax, err := sweep.ParseAxis(s)
	if err != nil {
		return err
	}
	*a = append(*a, ax)
	return nil
}
