package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	speckit "repro"
)

// smokeStatus mirrors the server's campaign status JSON, keeping results
// raw so parity can be checked byte-for-byte.
type smokeStatus struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Pairs    int    `json:"pairs"`
	Progress struct {
		Done      int `json:"done"`
		CacheHits int `json:"cache_hits"`
		StoreHits int `json:"store_hits"`
	} `json:"progress"`
	Error   string          `json:"error,omitempty"`
	Results json.RawMessage `json:"results"`
}

// specserved starts the built binary and returns its base URL plus the
// running command; callers stop it with SIGTERM and check the exit.
func specserved(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if addr, ok := strings.CutPrefix(line, "specserved listening on "); ok {
			go func() { // keep draining stdout so the child never blocks
				for scanner.Scan() {
				}
			}()
			return "http://" + strings.TrimSpace(addr), cmd
		}
	}
	t.Fatalf("specserved never reported its address (scanner err: %v)", scanner.Err())
	return "", nil
}

func submitWait(t *testing.T, base string, spec map[string]any) smokeStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/campaigns?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var st smokeStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func sigtermAndWait(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("specserved exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("specserved did not drain within 30s of SIGTERM")
	}
}

// TestServeSmoke is the `make serve-smoke` gate: build the real binary,
// run one train-size campaign over HTTP, assert parity with the library,
// then restart on the same cache dir and assert the repeat is served
// entirely from the persistent store — zero pairs simulated — before
// draining cleanly on SIGTERM.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the specserved binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "specserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}
	cacheDir := filepath.Join(tmp, "speccache")
	const instructions = 10000
	spec := map[string]any{
		"suite": "cpu2017", "mini": "rate-int", "size": "train",
		"instructions": instructions,
	}

	// First server lifetime: simulate everything, write the store.
	base, cmd := specserved(t, bin, "-cache-dir", cacheDir, "-workers", "1")
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	first := submitWait(t, base, spec)
	if first.Status != "done" {
		t.Fatalf("first campaign = %s (%s)", first.Status, first.Error)
	}
	if first.Progress.CacheHits != 0 {
		t.Fatalf("first campaign had %d cache hits, want 0", first.Progress.CacheHits)
	}
	sigtermAndWait(t, cmd)

	// Parity with a direct library run under identical options.
	pairs := speckit.CPU2017().Mini(speckit.RateInt)
	direct, err := speckit.Characterize(pairs, speckit.Train, speckit.Options{Instructions: instructions})
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(directJSON, first.Results) {
		t.Error("served results are not bit-identical to a direct library run")
	}
	if first.Pairs != len(direct) {
		t.Errorf("served %d pairs, library produced %d", first.Pairs, len(direct))
	}

	// Second server lifetime on the same cache dir: the repeat campaign
	// must be served from the persistent store without simulating a
	// single pair, bit-identically.
	base2, cmd2 := specserved(t, bin, "-cache-dir", cacheDir, "-workers", "1")
	second := submitWait(t, base2, spec)
	if second.Status != "done" {
		t.Fatalf("second campaign = %s (%s)", second.Status, second.Error)
	}
	if second.Progress.StoreHits != second.Pairs || second.Progress.CacheHits != second.Pairs {
		t.Errorf("second campaign hits = %+v, want all %d pairs from the store tier",
			second.Progress, second.Pairs)
	}
	if !bytes.Equal(first.Results, second.Results) {
		t.Error("restarted server returned different bytes for the same campaign")
	}

	// The tier stats on the expvar mirror confirm zero simulated pairs.
	mresp, err := http.Get(base2 + "/metrics/expvar")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics struct {
		Specserved struct {
			Pairs map[string]uint64 `json:"pairs"`
		} `json:"specserved"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if sim := metrics.Specserved.Pairs["simulated"]; sim != 0 {
		t.Errorf("restarted server simulated %d pairs, want 0", sim)
	}
	if fromStore := metrics.Specserved.Pairs["from_store"]; fromStore != uint64(second.Pairs) {
		t.Errorf("metrics from_store = %d, want %d", fromStore, second.Pairs)
	}
	sigtermAndWait(t, cmd2)
}

// TestRateSmoke is the `make rate-smoke` gate: build the real binary,
// run an N=4 rate-mode campaign over HTTP, assert parity with the
// library's shared-L3 kernel, then restart on the same cache dir and
// assert both the flat spec and the equivalent structured scenario spec
// are served from the persistent store — zero pairs simulated, bytes
// identical — with the rate-tier counters split out on the expvar
// mirror.
func TestRateSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the specserved binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "specserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}
	cacheDir := filepath.Join(tmp, "speccache")
	const instructions = 10000
	const copies = 4
	spec := map[string]any{
		"suite": "cpu2017", "mini": "rate-int", "size": "test",
		"instructions": instructions, "rate_copies": copies,
	}

	// First server lifetime: every rate pair simulates on the
	// interleaved kernel and lands in the store.
	base, cmd := specserved(t, bin, "-cache-dir", cacheDir, "-workers", "1")
	first := submitWait(t, base, spec)
	if first.Status != "done" {
		t.Fatalf("first rate campaign = %s (%s)", first.Status, first.Error)
	}
	if first.Progress.CacheHits != 0 {
		t.Fatalf("first rate campaign had %d cache hits, want 0", first.Progress.CacheHits)
	}
	sigtermAndWait(t, cmd)

	// Parity with a direct library run under the same scenario.
	pairs := speckit.CPU2017().Mini(speckit.RateInt)
	direct, err := speckit.Characterize(pairs, speckit.Test,
		speckit.Options{Instructions: instructions, RateCopies: copies})
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(directJSON, first.Results) {
		t.Error("served rate results are not bit-identical to a direct library run")
	}

	// Second lifetime on the same cache dir: the flat spec and the
	// structured scenario spelling of the same campaign are both served
	// from the store, byte-identically, with zero simulation.
	base2, cmd2 := specserved(t, bin, "-cache-dir", cacheDir, "-workers", "1")
	second := submitWait(t, base2, spec)
	if second.Status != "done" {
		t.Fatalf("second rate campaign = %s (%s)", second.Status, second.Error)
	}
	if second.Progress.StoreHits != second.Pairs {
		t.Errorf("second rate campaign hits = %+v, want all %d pairs from the store tier",
			second.Progress, second.Pairs)
	}
	if !bytes.Equal(first.Results, second.Results) {
		t.Error("restarted server returned different bytes for the same rate campaign")
	}
	structured := submitWait(t, base2, map[string]any{
		"suite": "cpu2017", "mini": "rate-int", "size": "test",
		"instructions": instructions,
		"scenario":     map[string]any{"rate_copies": copies},
	})
	if structured.Status != "done" {
		t.Fatalf("structured scenario campaign = %s (%s)", structured.Status, structured.Error)
	}
	if !bytes.Equal(first.Results, structured.Results) {
		t.Error("structured scenario spec keyed a different result than the flat spec")
	}

	// The expvar mirror splits the rate tier out: everything was served
	// from the store, nothing simulated in either accounting mode.
	mresp, err := http.Get(base2 + "/metrics/expvar")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics struct {
		Specserved struct {
			Pairs map[string]uint64 `json:"pairs"`
		} `json:"specserved"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if sim := metrics.Specserved.Pairs["rate_simulated"] + metrics.Specserved.Pairs["simulated"]; sim != 0 {
		t.Errorf("restarted server simulated %d pairs, want 0", sim)
	}
	served := metrics.Specserved.Pairs["rate_from_store"] + metrics.Specserved.Pairs["rate_from_memory"]
	if served != uint64(second.Pairs+structured.Pairs) {
		t.Errorf("rate tier served %d pairs, want %d", served, second.Pairs+structured.Pairs)
	}
	sigtermAndWait(t, cmd2)
}

// TestFleetSmoke is the `make fleet-smoke` gate: build the real
// binaries, start two worker specserveds and a coordinator in front of
// them, drive campaigns through the specload generator under generous
// SLO gates, and assert digest parity — the sharded campaign's results
// must be byte-identical to the same spec run directly on one worker,
// and a coordinator resubmission must be served locally.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the specserved and specload binaries")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "specserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build specserved: %v", err)
	}
	loadBin := filepath.Join(tmp, "specload")
	build = exec.Command("go", "build", "-o", loadBin, "../specload")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build specload: %v", err)
	}

	// Two workers with deliberately different base windows (-n): the
	// coordinator must forward the campaign's merged window explicitly,
	// so worker flag drift on spec-overridable knobs cannot skew bits.
	w1, w1cmd := specserved(t, bin, "-workers", "2", "-n", "111111")
	w2, w2cmd := specserved(t, bin, "-workers", "2", "-n", "222222")
	coord, coordCmd := specserved(t, bin,
		"-coordinator", w1+","+w2, "-fleet-chunk", "2",
		"-cache-dir", filepath.Join(tmp, "coordstore"), "-workers", "1")

	const instructions = 10000
	spec := map[string]any{
		"suite": "cpu2017", "mini": "rate-int", "size": "test",
		"instructions": instructions,
	}

	// Drive the coordinator through specload: 3 campaigns, 2 in flight,
	// generous gates (this is a smoke liveness check, not a perf run).
	load := exec.Command(loadBin,
		"-addr", coord, "-campaigns", "3", "-concurrency", "2",
		"-suite", "cpu2017", "-mini", "rate-int", "-size", "test",
		"-n", fmt.Sprint(instructions),
		"-slo-p99", "60s", "-min-pairs-per-sec", "0.1")
	load.Stderr = os.Stderr
	loadOut, err := load.Output()
	if err != nil {
		t.Fatalf("specload failed: %v", err)
	}
	var rep struct {
		Errors     int     `json:"errors"`
		TotalPairs int     `json:"total_pairs"`
		P99S       float64 `json:"p99_s"`
		PairsPS    float64 `json:"pairs_per_s"`
	}
	if err := json.Unmarshal(loadOut, &rep); err != nil {
		t.Fatalf("parsing specload report: %v\n%s", err, loadOut)
	}
	if rep.Errors != 0 || rep.TotalPairs == 0 || rep.PairsPS <= 0 {
		t.Fatalf("specload report %+v: campaigns failed or no throughput", rep)
	}

	// Digest parity: a coordinator resubmission (served from its own
	// tiers, zero remote) and a direct run on worker 1 must both return
	// the same bytes the sharded campaign produced.
	sharded := submitWait(t, coord, spec)
	if sharded.Status != "done" {
		t.Fatalf("coordinator campaign = %s (%s)", sharded.Status, sharded.Error)
	}
	if sharded.Progress.CacheHits != sharded.Pairs {
		t.Errorf("resubmission hits = %+v, want all %d pairs served locally",
			sharded.Progress, sharded.Pairs)
	}
	direct := submitWait(t, w1, spec)
	if direct.Status != "done" {
		t.Fatalf("direct worker campaign = %s (%s)", direct.Status, direct.Error)
	}
	if !bytes.Equal(sharded.Results, direct.Results) {
		t.Error("sharded results are not byte-identical to a direct single-worker run")
	}

	// The coordinator's own accounting: pairs came from the fleet, none
	// were simulated in-process.
	mresp, err := http.Get(coord + "/metrics/expvar")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Specserved struct {
			Pairs map[string]uint64 `json:"pairs"`
		} `json:"specserved"`
	}
	err = json.NewDecoder(mresp.Body).Decode(&metrics)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Specserved.Pairs["simulated"] != 0 {
		t.Errorf("coordinator simulated %d pairs itself, want 0", metrics.Specserved.Pairs["simulated"])
	}
	if metrics.Specserved.Pairs["from_remote"] == 0 {
		t.Error("coordinator reports zero remote pairs after a sharded campaign")
	}

	sigtermAndWait(t, coordCmd)
	sigtermAndWait(t, w1cmd)
	sigtermAndWait(t, w2cmd)
}

// submitSweepWait posts a sweep spec with ?wait=1 and returns the final
// status with the result kept raw for byte-identity checks.
func submitSweepWait(t *testing.T, base string, spec map[string]any) (status, errMsg string, result json.RawMessage) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/sweeps?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep submit = %d: %s", resp.StatusCode, raw)
	}
	var st struct {
		Status string          `json:"status"`
		Error  string          `json:"error,omitempty"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Status, st.Error, st.Result
}

// sweepCells scrapes the expvar mirror's sweeps.cells block.
func sweepCells(t *testing.T, base string) map[string]uint64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics/expvar")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics struct {
		Specserved struct {
			Sweeps struct {
				Cells map[string]uint64 `json:"cells"`
			} `json:"sweeps"`
		} `json:"specserved"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	return metrics.Specserved.Sweeps.Cells
}

// TestSweepSmoke is the `make sweep-smoke` gate: build the real
// binaries, run a 2x2x2 design-space sweep over /v1/sweeps, restart the
// server on the same cache dir, re-run the identical sweep and assert
// it simulates zero cells while reproducing the result — knee report
// included — byte for byte; then drive the same grid through the
// specsweep CLI against the live server.
func TestSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the specserved and specsweep binaries")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "specserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build specserved: %v", err)
	}
	sweepBin := filepath.Join(tmp, "specsweep")
	build = exec.Command("go", "build", "-o", sweepBin, "../specsweep")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build specsweep: %v", err)
	}

	cacheDir := filepath.Join(tmp, "speccache")
	spec := map[string]any{
		"suite": "cpu2017", "mini": "rate-int", "size": "test",
		"instructions": 10000,
		"axes": []map[string]any{
			{"param": "l3.size", "values": []int64{1 << 20, 2 << 20}},
			{"param": "l2.size", "values": []int64{128 << 10, 256 << 10}},
			{"param": "l1d.size", "values": []int64{16 << 10, 32 << 10}},
		},
	}

	// First lifetime: every screen cell is simulated, escalation runs.
	base, cmd := specserved(t, bin, "-cache-dir", cacheDir, "-workers", "1")
	status, errMsg, first := submitSweepWait(t, base, spec)
	if status != "done" {
		t.Fatalf("first sweep = %s (%s)", status, errMsg)
	}
	cells := sweepCells(t, base)
	if cells["screen_simulated"] == 0 || cells["escalate_simulated"] == 0 {
		t.Fatalf("cold sweep cells = %v, want simulated screen and escalate work", cells)
	}
	sigtermAndWait(t, cmd)

	// Second lifetime on the same store: zero simulated cells, and the
	// full result — grid, counters aside, knee reports — is
	// byte-identical.
	base2, cmd2 := specserved(t, bin, "-cache-dir", cacheDir, "-workers", "1")
	status, errMsg, second := submitSweepWait(t, base2, spec)
	if status != "done" {
		t.Fatalf("second sweep = %s (%s)", status, errMsg)
	}
	cells = sweepCells(t, base2)
	if cells["screen_simulated"] != 0 || cells["escalate_simulated"] != 0 {
		t.Errorf("restarted server simulated sweep cells: %v, want 0", cells)
	}
	if cells["screen_store"] == 0 {
		t.Errorf("restarted server cells = %v, want store-served screen cells", cells)
	}

	// The result embeds the cell scoreboard, which legitimately differs
	// between a cold and a warm run — compare the science: grid points
	// and knee reports.
	var r1, r2 struct {
		Points json.RawMessage `json:"points"`
		Knees  json.RawMessage `json:"knees"`
	}
	if err := json.Unmarshal(first, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &r2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Points, r2.Points) {
		t.Error("restarted server returned a different grid for the same sweep")
	}
	if !bytes.Equal(r1.Knees, r2.Knees) {
		t.Errorf("restarted server returned a different knee report:\n%s\n%s", r1.Knees, r2.Knees)
	}

	// The specsweep CLI drives the same grid over HTTP and renders it.
	cli := exec.Command(sweepBin, "-addr", base2,
		"-mini", "rate-int", "-size", "test", "-n", "10000",
		"-axis", "l3.size=1MiB,2MiB", "-axis", "l2.size=128KiB,256KiB", "-axis", "l1d.size=16KiB,32KiB")
	cli.Stderr = os.Stderr
	cliOut, err := cli.Output()
	if err != nil {
		t.Fatalf("specsweep failed: %v", err)
	}
	if !bytes.Contains(cliOut, []byte("Design-space grid (8 points")) ||
		!bytes.Contains(cliOut, []byte("Knee report:")) {
		t.Errorf("specsweep output missing tables:\n%s", cliOut)
	}
	sigtermAndWait(t, cmd2)
}

// TestServeSmokeMetrics is the `make metrics-smoke` gate: the binary's
// /metrics endpoint serves valid Prometheus text with the tier-split
// pair counters and stage histograms after a campaign runs.
func TestServeSmokeMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the specserved binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "specserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}
	base, cmd := specserved(t, bin, "-workers", "1")
	st := submitWait(t, base, map[string]any{
		"suite": "cpu2017", "mini": "rate-int", "size": "test", "instructions": 10000,
	})
	if st.Status != "done" {
		t.Fatalf("campaign = %s (%s)", st.Status, st.Error)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, series := range []string{
		`speckit_served_pairs_total{mode="exact",source="simulated"} ` + fmt.Sprint(st.Pairs),
		`speckit_pairs_total{source="simulated"} ` + fmt.Sprint(st.Pairs),
		`speckit_stage_seconds_bucket{stage="detail",le="+Inf"}`,
		`speckit_pair_seconds_bucket{source="simulated",le="+Inf"}`,
		`speckit_http_requests_total{code="200",route="submit"} 1`,
		`speckit_http_request_seconds_bucket{route="submit",le="+Inf"} 1`,
		`speckit_server_queue_depth 0`,
		`speckit_server_jobs{state="running"} 0`,
		`speckit_campaigns_total 1`,
		`speckit_workers_active 0`,
	} {
		if !strings.Contains(text, series+"\n") && !strings.Contains(text, series+" ") {
			t.Errorf("/metrics missing series %q", series)
		}
	}
	// Every sample line must carry a parseable float value.
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("non-numeric sample value in %q: %v", line, err)
		}
	}
	sigtermAndWait(t, cmd)
}

// TestServeSmokeDrainsInFlight: SIGTERM while a campaign is running
// still exits cleanly, with the job completed or reported cancelled.
func TestServeSmokeDrainsInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the specserved binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "specserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}
	base, cmd := specserved(t, bin, "-workers", "1", "-drain-grace", "2s")

	// A big window keeps the campaign in flight when SIGTERM lands.
	body, _ := json.Marshal(map[string]any{
		"suite": "cpu2017", "size": "ref", "instructions": 5000000,
	})
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st smokeStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	// Give the worker a moment to pick the campaign up, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(fmt.Sprintf("%s/v1/campaigns/%s?results=0", base, st.ID))
		if err != nil {
			t.Fatal(err)
		}
		var cur smokeStatus
		json.NewDecoder(r.Body).Decode(&cur)
		r.Body.Close()
		if cur.Status == "running" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	sigtermAndWait(t, cmd)
}
