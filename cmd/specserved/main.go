// Command specserved serves characterizations over HTTP: campaigns are
// submitted as JSON, run on the bounded scheduler behind a memoizing
// cache (optionally backed by a persistent content-addressed store), and
// streamed back with SSE progress. A campaign submitted twice — even
// across restarts, with -cache-dir — returns bit-identical results, the
// repeat served from the store without simulating a single uop.
//
// Usage:
//
//	specserved [-addr :8217] [-cache-dir DIR] [-workers 2] [-queue 16]
//	           [-parallelism N] [-n instructions] [-mux slots]
//	           [-drain-grace 30s]
//	           [-coordinator URL,URL,...] [-fleet-chunk 4]
//
// With -coordinator, this instance simulates nothing itself: each
// campaign's pairs are scattered across the listed worker specserved
// instances by consistent hash of their result-cache content keys,
// gathered back through the typed client (dead workers are evicted and
// their chunks resubmitted to survivors), and written through the
// coordinator's own cache tiers — so a sharded campaign produces
// results and store records bit-identical to a single-node run. The
// fleet must be homogeneous (same machine model and -mux base flags on
// every worker); the instruction window and sampling knob are forwarded
// explicitly per chunk.
//
// Endpoints: POST/GET/DELETE /v1/campaigns[/{id}], SSE at
// /v1/campaigns/{id}/events, the JSONL run manifest at
// /v1/campaigns/{id}/manifest, the same shape again under /v1/sweeps
// for design-space sweep jobs (cartesian machine-config grids screened
// at a cheap fidelity tier with Pareto-frontier escalation — see the
// specsweep command), GET /healthz, Prometheus text metrics at
// GET /metrics (expvar mirror at /metrics/expvar). See the README's
// "Serving characterizations" and "Sweeping the design space"
// walkthroughs.
//
// SIGINT/SIGTERM drain gracefully: admission stops (429/503), queued
// campaigns are reported cancelled, in-flight campaigns finish (or are
// cancelled after -drain-grace), then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	speckit "repro"
	"repro/internal/cliflags"
	"repro/internal/fleet"
	"repro/internal/server"
)

func main() {
	addrFlag := flag.String("addr", ":8217", "listen address")
	cacheDirFlag := flag.String("cache-dir", "", "persistent result-store directory: campaign results are written as checksummed content-addressed records and repeated campaigns (same models, machine, options) are served from it bit-identically, across restarts (empty = in-memory cache only)")
	workersFlag := flag.Int("workers", 2, "campaigns run concurrently")
	queueFlag := flag.Int("queue", 16, "campaign queue depth; submissions beyond it get 429")
	parFlag := flag.Int("parallelism", 0, "pair simulations per campaign (0 = NumCPU)")
	nFlag := flag.Uint64("n", 300000, "default simulated instructions per pair (overridable per request)")
	muxFlag := flag.Int("mux", 0, "default perf counter-multiplex slots, 0 = exact counters (overridable per request)")
	drainFlag := flag.Duration("drain-grace", 30*time.Second, "how long a drain waits for in-flight campaigns before cancelling them (0 = wait until they finish)")
	coordFlag := flag.String("coordinator", "", "comma-separated worker specserved URLs: run as a fleet coordinator, scattering campaigns across them instead of simulating locally")
	chunkFlag := flag.Int("fleet-chunk", 4, "pairs per scattered sub-campaign in coordinator mode")
	flag.Parse()

	if err := run(*addrFlag, *cacheDirFlag, *workersFlag, *queueFlag, *parFlag, *nFlag, *muxFlag, *drainFlag, *coordFlag, *chunkFlag); err != nil {
		fmt.Fprintln(os.Stderr, "specserved:", err)
		os.Exit(1)
	}
}

func run(addr, cacheDir string, workers, queue, parallelism int, n uint64, mux int, drainGrace time.Duration, coordinator string, fleetChunk int) error {
	ctx, stop := cliflags.SignalContext()
	defer stop()

	opt := speckit.Options{
		Instructions:   n,
		Parallelism:    parallelism,
		MultiplexSlots: mux,
		Cache:          speckit.NewCache(),
	}
	if cacheDir != "" {
		st, err := speckit.OpenStore(cacheDir)
		if err != nil {
			return err
		}
		opt.Store = st
		fmt.Fprintf(os.Stderr, "specserved: persistent result store at %s\n", st.Dir())
	}

	cfg := server.Config{
		Workers:      workers,
		QueueDepth:   queue,
		DrainGrace:   drainGrace,
		FleetChunk:   fleetChunk,
		Characterize: opt,
	}
	if coordinator != "" {
		var urls []string
		for _, u := range strings.Split(coordinator, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			return fmt.Errorf("-coordinator lists no worker URLs")
		}
		cfg.Fleet = fleet.Workers(urls)
		fmt.Fprintf(os.Stderr, "specserved: coordinating a fleet of %d workers\n", len(urls))
	}
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The smoke test (and humans starting with -addr :0) parse this line
	// for the bound address.
	fmt.Printf("specserved listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Fprintln(os.Stderr, "specserved: signal received, draining")
		srv.Drain()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "specserved: drained")
		return nil
	}
}
