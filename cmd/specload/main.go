// Command specload is the load generator for specserved (single node or
// fleet coordinator): it drives concurrent campaigns — or, with
// -sweeps, design-space sweeps — through the typed client, measures
// per-job latency into an internal/obs histogram, and gates the run
// against latency and throughput SLOs.
//
// Usage:
//
//	specload -addr http://127.0.0.1:8217 [-campaigns 8] [-concurrency 4]
//	         [-suite cpu2017] [-mini rate-int] [-size test] [-n 20000]
//	         [-sampling off] [-unique]
//	         [-sweeps 0] [-sweep-axes "l3.size=1MiB,2MiB"] [-escalate sampled]
//	         [-slo-p50 0] [-slo-p99 0] [-min-pairs-per-sec 0]
//	         [-bench BENCH_serve.json] [-label ""]
//
// Each campaign is submitted with ?wait=1 (queue-full rejections retry
// under the client's backoff policy, honoring Retry-After). With
// -unique, campaign i widens the instruction window by i so every
// campaign carries distinct content keys and actually exercises the
// serving tier; without it, repeats are served from the target's cache
// and the run measures pure serving latency.
//
// With -sweeps N the generator submits N /v1/sweeps jobs instead of
// campaigns: -sweep-axes takes semicolon-separated axes in specsweep's
// param=v1,v2 syntax, -unique widens the instruction window per sweep,
// and the report counts grid cells (simulated vs served) instead of
// pairs. The -min-pairs-per-sec floor then gates cells per second.
//
// The report is one JSON object on stdout: p50/p99/mean latency
// (interpolated from the obs histogram), jobs/s and pairs/s (or
// cells/s) over the wall clock, and error counts. When -slo-p50,
// -slo-p99 or -min-pairs-per-sec are set, a violation prints to stderr
// and exits 1 — the CI gate. With -bench, the report is also appended
// to the file's "trajectory" array (created as needed), preserving the
// "floors" block for the baseline gate test.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sweep"
)

// report is the JSON result of one specload run; also the trajectory
// entry format in BENCH_serve.json.
type report struct {
	Date        string  `json:"date"`
	Label       string  `json:"label,omitempty"`
	Target      string  `json:"target"`
	Mode        string  `json:"mode,omitempty"`
	Campaigns   int     `json:"campaigns"`
	Concurrency int     `json:"concurrency"`
	Unique      bool    `json:"unique"`
	Errors      int     `json:"errors"`
	TotalPairs  int     `json:"total_pairs"`
	ElapsedS    float64 `json:"elapsed_s"`
	P50S        float64 `json:"p50_s"`
	P99S        float64 `json:"p99_s"`
	MeanS       float64 `json:"mean_s"`
	CampaignsPS float64 `json:"campaigns_per_s"`
	PairsPS     float64 `json:"pairs_per_s"`
	// Sweep-mode extras: grid cells across all sweeps, split by
	// whether the target simulated them or served them from a cache
	// tier (memory, store or a fleet worker's cache).
	Cells          int     `json:"cells,omitempty"`
	CellsSimulated int     `json:"cells_simulated,omitempty"`
	CellsServed    int     `json:"cells_served,omitempty"`
	CellsPS        float64 `json:"cells_per_s,omitempty"`
	// ScreenCells and EscalateCells summarize per-cell completion
	// latency by sweep phase, attributed from each sweep's SSE
	// progress stream: the screen phase is dominated by cheap
	// (possibly cache-served) cells, escalation by the expensive
	// re-simulations — one aggregate latency would hide the split the
	// fidelity-escalation design exists to create.
	ScreenCells   *phaseLatency `json:"screen_cell_latency,omitempty"`
	EscalateCells *phaseLatency `json:"escalate_cell_latency,omitempty"`
}

// phaseLatency is one sweep phase's cell-latency summary.
type phaseLatency struct {
	Cells int     `json:"cells"`
	P50S  float64 `json:"p50_s"`
	P99S  float64 `json:"p99_s"`
	MeanS float64 `json:"mean_s"`
}

// summarize converts a phase histogram snapshot into the report form;
// empty phases (e.g. -escalate off) report nil so they stay out of the
// JSON.
func summarize(snap obs.HistogramSnapshot) *phaseLatency {
	if snap.Count == 0 {
		return nil
	}
	return &phaseLatency{
		Cells: int(snap.Count),
		P50S:  snap.Quantile(0.50),
		P99S:  snap.Quantile(0.99),
		MeanS: snap.Sum / float64(snap.Count),
	}
}

// config carries the parsed flags.
type config struct {
	addr              string
	campaigns         int
	concurrency       int
	suite, mini, size string
	n                 uint64
	sampling          string
	unique            bool
	sweeps            int
	sweepAxes         string
	escalate          string
	sloP50, sloP99    time.Duration
	minPairs          float64
	bench, label      string
	timeout           time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8217", "specserved base URL")
	flag.IntVar(&cfg.campaigns, "campaigns", 8, "campaigns to submit in total")
	flag.IntVar(&cfg.concurrency, "concurrency", 4, "jobs in flight at once")
	flag.StringVar(&cfg.suite, "suite", "cpu2017", "benchmark suite")
	flag.StringVar(&cfg.mini, "mini", "rate-int", "mini-suite filter")
	flag.StringVar(&cfg.size, "size", "test", "input size")
	flag.Uint64Var(&cfg.n, "n", 20000, "instructions per pair")
	flag.StringVar(&cfg.sampling, "sampling", "", "sampling knob forwarded to the server")
	flag.BoolVar(&cfg.unique, "unique", false, "give every job distinct content keys (job i runs n+i instructions)")
	flag.IntVar(&cfg.sweeps, "sweeps", 0, "drive this many /v1/sweeps jobs instead of campaigns")
	flag.StringVar(&cfg.sweepAxes, "sweep-axes", "l3.size=1MiB,2MiB", "semicolon-separated sweep axes (param=v1,v2,...)")
	flag.StringVar(&cfg.escalate, "escalate", "off", "sweep escalation tier: sampled, exact, analytic or off")
	flag.DurationVar(&cfg.sloP50, "slo-p50", 0, "fail when p50 job latency exceeds this (0 = no gate)")
	flag.DurationVar(&cfg.sloP99, "slo-p99", 0, "fail when p99 job latency exceeds this (0 = no gate)")
	flag.Float64Var(&cfg.minPairs, "min-pairs-per-sec", 0, "fail when pair (or sweep-cell) throughput falls below this (0 = no gate)")
	flag.StringVar(&cfg.bench, "bench", "", "append the report to this BENCH_serve.json trajectory file")
	flag.StringVar(&cfg.label, "label", "", "free-form label recorded in the report (e.g. \"fleet-3\")")
	flag.DurationVar(&cfg.timeout, "timeout", 10*time.Minute, "overall deadline")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "specload:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	cl := client.New(cfg.addr)
	if ok, err := cl.Health(ctx); err != nil || !ok {
		return fmt.Errorf("target %s is not healthy (err: %v)", cfg.addr, err)
	}

	rep := report{
		Date:        time.Now().UTC().Format("2006-01-02"),
		Label:       cfg.label,
		Target:      cfg.addr,
		Concurrency: cfg.concurrency,
		Unique:      cfg.unique,
	}
	var err error
	if cfg.sweeps > 0 {
		err = runSweeps(ctx, cl, cfg, &rep)
	} else {
		err = runCampaigns(ctx, cl, cfg, &rep)
	}
	if err != nil {
		return err
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))

	if cfg.bench != "" {
		if err := appendTrajectory(cfg.bench, rep); err != nil {
			return fmt.Errorf("recording trajectory: %w", err)
		}
	}
	return gate(cfg, rep)
}

// runCampaigns drives cfg.campaigns concurrent campaign jobs.
func runCampaigns(ctx context.Context, cl *client.Client, cfg config, rep *report) error {
	hist := obs.Default().Histogram("specload_campaign_seconds",
		"End-to-end campaign latency as observed by specload.", obs.LatencyBuckets)
	var (
		errs  atomic.Int64
		pairs atomic.Int64
	)
	elapsed := fanOut(cfg.campaigns, cfg.concurrency, func(i int) {
		spec := server.CampaignSpec{
			Suite: cfg.suite, Mini: cfg.mini, Size: cfg.size,
			Instructions: cfg.n, Sampling: cfg.sampling,
		}
		if cfg.unique {
			spec.Instructions = cfg.n + uint64(i)
		}
		t0 := time.Now()
		st, err := cl.SubmitWait(ctx, spec)
		hist.ObserveDuration(time.Since(t0))
		if err != nil || st.Status != server.StatusDone {
			errs.Add(1)
			fmt.Fprintf(os.Stderr, "specload: campaign failed: status=%s err=%v\n", st.Status, err)
			return
		}
		pairs.Add(int64(st.Pairs))
	})

	rep.Campaigns = cfg.campaigns
	rep.Errors = int(errs.Load())
	rep.TotalPairs = int(pairs.Load())
	fill(rep, hist, cfg.campaigns, elapsed)
	rep.PairsPS = float64(pairs.Load()) / elapsed.Seconds()
	return nil
}

// runSweeps drives cfg.sweeps concurrent /v1/sweeps jobs and counts
// grid cells by how the target satisfied them.
func runSweeps(ctx context.Context, cl *client.Client, cfg config, rep *report) error {
	var axes []sweep.Axis
	for _, part := range strings.Split(cfg.sweepAxes, ";") {
		ax, err := sweep.ParseAxis(strings.TrimSpace(part))
		if err != nil {
			return err
		}
		axes = append(axes, ax)
	}
	hist := obs.Default().Histogram("specload_sweep_seconds",
		"End-to-end sweep latency as observed by specload.", obs.LatencyBuckets)
	phaseHist := map[string]*obs.Histogram{
		"screen": obs.Default().Histogram("specload_sweep_cell_seconds",
			"Per-cell completion latency by sweep phase, attributed from the sweep's SSE progress stream.",
			obs.LatencyBuckets, "phase", "screen"),
		"escalate": obs.Default().Histogram("specload_sweep_cell_seconds", "",
			obs.LatencyBuckets, "phase", "escalate"),
	}
	var (
		errs                     atomic.Int64
		cells, simulated, served atomic.Int64
	)
	elapsed := fanOut(cfg.sweeps, cfg.concurrency, func(i int) {
		spec := server.SweepSpec{
			Suite: cfg.suite, Mini: cfg.mini, Size: cfg.size,
			Instructions: cfg.n, Sampling: cfg.sampling,
			Axes: axes, Escalate: cfg.escalate,
		}
		if cfg.unique {
			spec.Instructions = cfg.n + uint64(i)
		}
		t0 := time.Now()
		st, err := runSweep(ctx, cl, spec, phaseHist)
		hist.ObserveDuration(time.Since(t0))
		if err != nil || st.Status != server.StatusDone || st.Result == nil {
			errs.Add(1)
			fmt.Fprintf(os.Stderr, "specload: sweep failed: status=%s err=%v\n", st.Status, err)
			return
		}
		for _, c := range []sweep.CellCounts{st.Result.Screen, st.Result.Escalate} {
			cells.Add(int64(c.Total()))
			simulated.Add(int64(c.Simulated))
			served.Add(int64(c.Total() - c.Simulated))
		}
	})

	rep.Mode = "sweeps"
	rep.Campaigns = cfg.sweeps
	rep.Errors = int(errs.Load())
	fill(rep, hist, cfg.sweeps, elapsed)
	rep.Cells = int(cells.Load())
	rep.CellsSimulated = int(simulated.Load())
	rep.CellsServed = int(served.Load())
	rep.CellsPS = float64(cells.Load()) / elapsed.Seconds()
	rep.ScreenCells = summarize(phaseHist["screen"].Snapshot())
	rep.EscalateCells = summarize(phaseHist["escalate"].Snapshot())
	return nil
}

// runSweep submits one sweep without ?wait=1 (retrying queue-full
// rejections) and follows its SSE event stream to completion,
// attributing per-cell completion latency to the phase histograms: the
// wall time between consecutive progress snapshots is split evenly over
// the cells that completed in the interval and observed under the
// snapshot's phase. The stream's done event omits the result payload,
// so the terminal status comes from one final poll (immediate — the
// sweep is already terminal when the stream closes).
func runSweep(ctx context.Context, cl *client.Client, spec server.SweepSpec,
	phaseHist map[string]*obs.Histogram) (server.SweepStatus, error) {
	var st server.SweepStatus
	var err error
	for {
		st, err = cl.SubmitSweep(ctx, spec)
		if err == nil || !client.IsQueueFull(err) {
			break
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
	if err != nil {
		return st, err
	}

	last, lastCells := time.Now(), 0
	err = cl.SweepEvents(ctx, st.ID, func(ev client.Event) error {
		if ev.Name != "progress" {
			return nil
		}
		p, perr := ev.SweepProgress()
		if perr != nil {
			return nil
		}
		now := time.Now()
		if d := p.CellsDone - lastCells; d > 0 {
			h := phaseHist[p.Phase]
			if h == nil {
				h = phaseHist["screen"]
			}
			per := now.Sub(last).Seconds() / float64(d)
			for i := 0; i < d; i++ {
				h.Observe(per)
			}
			lastCells = p.CellsDone
		}
		last = now
		return nil
	})
	if err != nil {
		return st, err
	}
	return cl.WaitSweep(ctx, st.ID)
}

// fanOut runs fn(0..jobs-1) with at most concurrency in flight and
// returns the wall time.
func fanOut(jobs, concurrency int, fn func(i int)) time.Duration {
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(concurrency, 1))
	start := time.Now()
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
	return time.Since(start)
}

// fill records the shared latency/throughput fields from the histogram.
func fill(rep *report, hist *obs.Histogram, jobs int, elapsed time.Duration) {
	snap := hist.Snapshot()
	rep.ElapsedS = elapsed.Seconds()
	rep.P50S = snap.Quantile(0.50)
	rep.P99S = snap.Quantile(0.99)
	rep.CampaignsPS = float64(jobs) / elapsed.Seconds()
	if snap.Count > 0 {
		rep.MeanS = snap.Sum / float64(snap.Count)
	}
}

// gate checks the SLO flags against the report.
func gate(cfg config, rep report) error {
	throughput, floor := rep.PairsPS, "pairs/s"
	if rep.Mode == "sweeps" {
		throughput, floor = rep.CellsPS, "cells/s"
	}
	var violations []string
	if rep.Errors > 0 {
		violations = append(violations, fmt.Sprintf("%d/%d jobs failed", rep.Errors, rep.Campaigns))
	}
	if cfg.sloP50 > 0 && rep.P50S > cfg.sloP50.Seconds() {
		violations = append(violations, fmt.Sprintf("p50 %.3fs exceeds SLO %s", rep.P50S, cfg.sloP50))
	}
	if cfg.sloP99 > 0 && rep.P99S > cfg.sloP99.Seconds() {
		violations = append(violations, fmt.Sprintf("p99 %.3fs exceeds SLO %s", rep.P99S, cfg.sloP99))
	}
	if cfg.minPairs > 0 && throughput < cfg.minPairs {
		violations = append(violations, fmt.Sprintf("throughput %.1f %s below floor %.1f", throughput, floor, cfg.minPairs))
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "specload: SLO violation:", v)
		}
		return fmt.Errorf("%d SLO violation(s)", len(violations))
	}
	return nil
}

// benchFile is the BENCH_serve.json shape: recorded floors plus the
// trajectory of specload runs. Unknown fields (comment, etc.) are
// preserved via the raw map.
type benchFile map[string]json.RawMessage

// appendTrajectory appends rep to the file's "trajectory" array,
// creating the file if missing and leaving every other top-level field
// (comment, floors, recorded runs) untouched.
func appendTrajectory(path string, rep report) error {
	bf := benchFile{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &bf); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	var traj []report
	if raw, ok := bf["trajectory"]; ok {
		if err := json.Unmarshal(raw, &traj); err != nil {
			return fmt.Errorf("parsing %s trajectory: %w", path, err)
		}
	}
	traj = append(traj, rep)
	enc, err := json.Marshal(traj)
	if err != nil {
		return err
	}
	bf["trajectory"] = enc
	out, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
