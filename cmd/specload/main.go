// Command specload is the load generator for specserved (single node or
// fleet coordinator): it drives concurrent campaigns through the typed
// client, measures per-campaign latency into an internal/obs histogram,
// and gates the run against latency and throughput SLOs.
//
// Usage:
//
//	specload -addr http://127.0.0.1:8217 [-campaigns 8] [-concurrency 4]
//	         [-suite cpu2017] [-mini rate-int] [-size test] [-n 20000]
//	         [-sampling off] [-unique]
//	         [-slo-p50 0] [-slo-p99 0] [-min-pairs-per-sec 0]
//	         [-bench BENCH_serve.json] [-label ""]
//
// Each campaign is submitted with ?wait=1 (queue-full rejections retry
// under the client's backoff policy, honoring Retry-After). With
// -unique, campaign i widens the instruction window by i so every
// campaign carries distinct content keys and actually exercises the
// serving tier; without it, repeats are served from the target's cache
// and the run measures pure serving latency.
//
// The report is one JSON object on stdout: p50/p99/mean campaign
// latency (interpolated from the obs histogram), campaigns/s and
// pairs/s over the wall clock, and error counts. When -slo-p50,
// -slo-p99 or -min-pairs-per-sec are set, a violation prints to stderr
// and exits 1 — the CI gate. With -bench, the report is also appended
// to the file's "trajectory" array (created as needed), preserving the
// "floors" block for the baseline gate test.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/server"
)

// report is the JSON result of one specload run; also the trajectory
// entry format in BENCH_serve.json.
type report struct {
	Date        string  `json:"date"`
	Label       string  `json:"label,omitempty"`
	Target      string  `json:"target"`
	Campaigns   int     `json:"campaigns"`
	Concurrency int     `json:"concurrency"`
	Unique      bool    `json:"unique"`
	Errors      int     `json:"errors"`
	TotalPairs  int     `json:"total_pairs"`
	ElapsedS    float64 `json:"elapsed_s"`
	P50S        float64 `json:"p50_s"`
	P99S        float64 `json:"p99_s"`
	MeanS       float64 `json:"mean_s"`
	CampaignsPS float64 `json:"campaigns_per_s"`
	PairsPS     float64 `json:"pairs_per_s"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8217", "specserved base URL")
	campaigns := flag.Int("campaigns", 8, "campaigns to submit in total")
	concurrency := flag.Int("concurrency", 4, "campaigns in flight at once")
	suite := flag.String("suite", "cpu2017", "benchmark suite")
	mini := flag.String("mini", "rate-int", "mini-suite filter")
	size := flag.String("size", "test", "input size")
	n := flag.Uint64("n", 20000, "instructions per pair")
	sampling := flag.String("sampling", "", "sampling knob forwarded to the server")
	unique := flag.Bool("unique", false, "give every campaign distinct content keys (campaign i runs n+i instructions)")
	sloP50 := flag.Duration("slo-p50", 0, "fail when p50 campaign latency exceeds this (0 = no gate)")
	sloP99 := flag.Duration("slo-p99", 0, "fail when p99 campaign latency exceeds this (0 = no gate)")
	minPairs := flag.Float64("min-pairs-per-sec", 0, "fail when pair throughput falls below this (0 = no gate)")
	bench := flag.String("bench", "", "append the report to this BENCH_serve.json trajectory file")
	label := flag.String("label", "", "free-form label recorded in the report (e.g. \"fleet-3\")")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall deadline")
	flag.Parse()

	if err := run(*addr, *campaigns, *concurrency, *suite, *mini, *size, *n, *sampling,
		*unique, *sloP50, *sloP99, *minPairs, *bench, *label, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "specload:", err)
		os.Exit(1)
	}
}

func run(addr string, campaigns, concurrency int, suite, mini, size string, n uint64,
	sampling string, unique bool, sloP50, sloP99 time.Duration, minPairs float64,
	bench, label string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cl := client.New(addr)
	if ok, err := cl.Health(ctx); err != nil || !ok {
		return fmt.Errorf("target %s is not healthy (err: %v)", addr, err)
	}

	hist := obs.Default().Histogram("specload_campaign_seconds",
		"End-to-end campaign latency as observed by specload.", obs.LatencyBuckets)
	var (
		errs  atomic.Int64
		pairs atomic.Int64
		wg    sync.WaitGroup
		sem   = make(chan struct{}, max(concurrency, 1))
	)
	start := time.Now()
	for i := 0; i < campaigns; i++ {
		spec := server.CampaignSpec{
			Suite: suite, Mini: mini, Size: size,
			Instructions: n, Sampling: sampling,
		}
		if unique {
			spec.Instructions = n + uint64(i)
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(spec server.CampaignSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			st, err := cl.SubmitWait(ctx, spec)
			hist.ObserveDuration(time.Since(t0))
			if err != nil || st.Status != server.StatusDone {
				errs.Add(1)
				fmt.Fprintf(os.Stderr, "specload: campaign failed: status=%s err=%v\n", st.Status, err)
				return
			}
			pairs.Add(int64(st.Pairs))
		}(spec)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := hist.Snapshot()
	rep := report{
		Date:        time.Now().UTC().Format("2006-01-02"),
		Label:       label,
		Target:      addr,
		Campaigns:   campaigns,
		Concurrency: concurrency,
		Unique:      unique,
		Errors:      int(errs.Load()),
		TotalPairs:  int(pairs.Load()),
		ElapsedS:    elapsed.Seconds(),
		P50S:        snap.Quantile(0.50),
		P99S:        snap.Quantile(0.99),
		CampaignsPS: float64(campaigns) / elapsed.Seconds(),
		PairsPS:     float64(pairs.Load()) / elapsed.Seconds(),
	}
	if snap.Count > 0 {
		rep.MeanS = snap.Sum / float64(snap.Count)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))

	if bench != "" {
		if err := appendTrajectory(bench, rep); err != nil {
			return fmt.Errorf("recording trajectory: %w", err)
		}
	}

	var violations []string
	if rep.Errors > 0 {
		violations = append(violations, fmt.Sprintf("%d/%d campaigns failed", rep.Errors, campaigns))
	}
	if sloP50 > 0 && rep.P50S > sloP50.Seconds() {
		violations = append(violations, fmt.Sprintf("p50 %.3fs exceeds SLO %s", rep.P50S, sloP50))
	}
	if sloP99 > 0 && rep.P99S > sloP99.Seconds() {
		violations = append(violations, fmt.Sprintf("p99 %.3fs exceeds SLO %s", rep.P99S, sloP99))
	}
	if minPairs > 0 && rep.PairsPS < minPairs {
		violations = append(violations, fmt.Sprintf("throughput %.1f pairs/s below floor %.1f", rep.PairsPS, minPairs))
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "specload: SLO violation:", v)
		}
		return fmt.Errorf("%d SLO violation(s)", len(violations))
	}
	return nil
}

// benchFile is the BENCH_serve.json shape: recorded floors plus the
// trajectory of specload runs. Unknown fields (comment, etc.) are
// preserved via the raw map.
type benchFile map[string]json.RawMessage

// appendTrajectory appends rep to the file's "trajectory" array,
// creating the file if missing and leaving every other top-level field
// (comment, floors, recorded runs) untouched.
func appendTrajectory(path string, rep report) error {
	bf := benchFile{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &bf); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	var traj []report
	if raw, ok := bf["trajectory"]; ok {
		if err := json.Unmarshal(raw, &traj); err != nil {
			return fmt.Errorf("parsing %s trajectory: %w", path, err)
		}
	}
	traj = append(traj, rep)
	enc, err := json.Marshal(traj)
	if err != nil {
		return err
	}
	bf["trajectory"] = enc
	out, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
