package main

import (
	"context"
	"testing"

	"repro/internal/cliflags"
)

// TestRunSmoke audits a suite end to end with a small window.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite audit in -short mode")
	}
	ctx := context.Background()
	if err := run(ctx, config{suite: "cpu2006", size: "ref", n: 15000, worst: 5, Campaign: cliflags.Campaign{Progress: true}}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(ctx, config{suite: "cpu2095", size: "ref", n: 1000, worst: 1}); err == nil {
		t.Error("unknown suite accepted")
	}
	if err := run(ctx, config{suite: "cpu2017", size: "gigantic", n: 1000, worst: 1}); err == nil {
		t.Error("unknown size accepted")
	}
}

// TestRunCacheDir: a repeat audit on the same -cache-dir is served from
// the persistent store.
func TestRunCacheDir(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite audit in -short mode")
	}
	dir := t.TempDir()
	cfg := config{suite: "cpu2006", size: "ref", n: 10000, worst: 3, Campaign: cliflags.Campaign{CacheDir: dir}}
	for i := 0; i < 2; i++ {
		if err := run(context.Background(), cfg); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}
