package main

import "testing"

// TestRunSmoke audits a suite end to end with a small window.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite audit in -short mode")
	}
	if err := run("cpu2006", "ref", 15000, 5, true, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run("cpu2095", "ref", 1000, 1, false, 0); err == nil {
		t.Error("unknown suite accepted")
	}
	if err := run("cpu2017", "gigantic", 1000, 1, false, 0); err == nil {
		t.Error("unknown size accepted")
	}
}
