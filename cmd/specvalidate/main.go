// Command specvalidate audits the calibration quality of the workload
// models: for every application-input pair it compares the simulator's
// measured metrics against the model's targets and reports the worst
// deviations — the quantitative basis for trusting the reproduction.
//
// Usage:
//
//	specvalidate [-suite cpu2017|cpu2006] [-size ref] [-n instructions] [-worst 15]
//	             [-progress] [-cache-dir DIR] [-sampling off|default|P/D/W]
//	             [-j N] [-trace FILE] [-slow-pair DUR]
//
// Ctrl-C (or SIGTERM) cancels the in-flight campaign through the
// scheduler's context path rather than killing the process mid-write.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	speckit "repro"
	"repro/internal/cliflags"
	"repro/internal/report"
)

// config collects the tool's flags; the embedded Campaign carries the
// ones shared across the speckit tools.
type config struct {
	suite, size string
	n           uint64
	worst       int
	cliflags.Campaign
}

func main() {
	var cfg config
	flag.StringVar(&cfg.suite, "suite", "cpu2017", "suite to validate")
	flag.StringVar(&cfg.size, "size", "ref", "input size")
	flag.Uint64Var(&cfg.n, "n", 200000, "simulated instructions per pair")
	flag.IntVar(&cfg.worst, "worst", 15, "how many worst deviations to list")
	cfg.Campaign.Register(flag.CommandLine)
	flag.Parse()

	ctx, stop := cliflags.SignalContext()
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "specvalidate:", err)
		os.Exit(1)
	}
}

// deviation is one metric's measured-vs-target gap for one pair.
type deviation struct {
	pair, metric     string
	target, measured float64
	score            float64 // normalized severity
}

func run(ctx context.Context, cfg config) error {
	var suite speckit.Suite
	switch strings.ToLower(cfg.suite) {
	case "cpu2017", "cpu17":
		suite = speckit.CPU2017()
	case "cpu2006", "cpu06":
		suite = speckit.CPU2006()
	default:
		return fmt.Errorf("unknown suite %q", cfg.suite)
	}
	var size speckit.InputSize
	switch strings.ToLower(cfg.size) {
	case "test":
		size = speckit.Test
	case "train":
		size = speckit.Train
	case "ref":
		size = speckit.Ref
	default:
		return fmt.Errorf("unknown size %q", cfg.size)
	}

	opt, err := cfg.Campaign.Options(ctx)
	if err != nil {
		return err
	}
	opt.Instructions = cfg.n
	chars, err := speckit.Characterize(suite, size, opt)
	if err != nil {
		return err
	}
	if err := cfg.Campaign.Finish(); err != nil {
		return err
	}

	var devs []deviation
	unreachable := 0
	for i := range chars {
		c := &chars[i]
		m := c.Pair.Model
		if !c.Calibrated {
			unreachable++
		}
		add := func(metric string, target, measured, scale float64) {
			if scale <= 0 {
				scale = 1
			}
			devs = append(devs, deviation{
				pair: c.Pair.Name(), metric: metric,
				target: target, measured: measured,
				score: math.Abs(measured-target) / scale,
			})
		}
		add("IPC", m.TargetIPC, c.IPC, m.TargetIPC)
		add("%loads", m.LoadPct, c.LoadPct, 25)
		add("%stores", m.StorePct, c.StorePct, 10)
		add("%branches", m.BranchPct, c.BranchPct, 15)
		add("misp%", m.MispredictPct, c.MispredictPct, math.Max(m.MispredictPct, 1))
		add("L1%", m.L1MissPct, c.L1MissPct, math.Max(m.L1MissPct, 2))
		add("L2%", m.L2MissPct, c.L2MissPct, math.Max(m.L2MissPct, 10))
		add("L3%", m.L3MissPct, c.L3MissPct, math.Max(m.L3MissPct, 10))
	}

	// Aggregate error per metric.
	agg := report.NewTable(
		fmt.Sprintf("Calibration audit: %s %s (%d pairs, %d unreachable IPC targets)",
			cfg.suite, cfg.size, len(chars), unreachable),
		"Metric", "Mean |err| (norm)", "P95 |err| (norm)", "Max |err| (norm)")
	byMetric := map[string][]float64{}
	order := []string{"IPC", "%loads", "%stores", "%branches", "misp%", "L1%", "L2%", "L3%"}
	for _, d := range devs {
		byMetric[d.metric] = append(byMetric[d.metric], d.score)
	}
	for _, metric := range order {
		scores := byMetric[metric]
		sort.Float64s(scores)
		mean := 0.0
		for _, v := range scores {
			mean += v
		}
		mean /= float64(len(scores))
		p95 := scores[len(scores)*95/100]
		agg.AddRowf(metric, mean, p95, scores[len(scores)-1])
	}
	if err := agg.WriteText(os.Stdout); err != nil {
		return err
	}

	// Worst individual deviations.
	sort.Slice(devs, func(i, j int) bool { return devs[i].score > devs[j].score })
	worst := cfg.worst
	if worst > len(devs) {
		worst = len(devs)
	}
	fmt.Println()
	wt := report.NewTable("Worst deviations", "Pair", "Metric", "Target", "Measured", "Severity")
	for _, d := range devs[:worst] {
		wt.AddRowf(d.pair, d.metric, d.target, d.measured, d.score)
	}
	return wt.WriteText(os.Stdout)
}
