package main

import (
	"context"
	"testing"

	"repro/internal/cliflags"
	"repro/internal/cluster"
)

func TestPickLinkage(t *testing.T) {
	cases := map[string]cluster.Linkage{
		"ward": cluster.Ward, "": cluster.Ward,
		"single": cluster.Single, "complete": cluster.Complete,
		"average": cluster.Average, "WARD": cluster.Ward,
	}
	for name, want := range cases {
		got, err := pickLinkage(name)
		if err != nil {
			t.Errorf("pickLinkage(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("pickLinkage(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := pickLinkage("centroid"); err == nil {
		t.Error("unknown linkage accepted")
	}
}

// TestRunSmoke drives the subsetting tool end to end with a small window.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite characterization in -short mode")
	}
	ctx := context.Background()
	if err := run(ctx, config{n: 20000, pcs: 4, linkage: "ward", verbose: true, Campaign: cliflags.Campaign{Progress: true}}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(ctx, config{n: 1000, linkage: "diagonal"}); err == nil {
		t.Error("bad linkage accepted")
	}
}

// TestRunCacheDir: a repeat run on the same -cache-dir is served from
// the persistent store.
func TestRunCacheDir(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite characterization in -short mode")
	}
	dir := t.TempDir()
	cfg := config{n: 10000, linkage: "ward", Campaign: cliflags.Campaign{CacheDir: dir}}
	for i := 0; i < 2; i++ {
		if err := run(context.Background(), cfg); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}
