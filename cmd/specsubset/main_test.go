package main

import (
	"testing"

	"repro/internal/cluster"
)

func TestPickLinkage(t *testing.T) {
	cases := map[string]cluster.Linkage{
		"ward": cluster.Ward, "": cluster.Ward,
		"single": cluster.Single, "complete": cluster.Complete,
		"average": cluster.Average, "WARD": cluster.Ward,
	}
	for name, want := range cases {
		got, err := pickLinkage(name)
		if err != nil {
			t.Errorf("pickLinkage(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("pickLinkage(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := pickLinkage("centroid"); err == nil {
		t.Error("unknown linkage accepted")
	}
}

// TestRunSmoke drives the subsetting tool end to end with a small window.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite characterization in -short mode")
	}
	if err := run(20000, 4, "ward", true, true, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(1000, 0, "diagonal", false, false, 0); err == nil {
		t.Error("bad linkage accepted")
	}
}
