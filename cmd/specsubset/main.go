// Command specsubset runs the paper's Section V methodology: it
// characterizes the CPU2017 rate and speed suites, performs PCA and
// hierarchical clustering over the 20 microarchitecture-independent
// characteristics, and prints the suggested representative subsets with
// their execution-time savings (Table X).
//
// Usage:
//
//	specsubset [-n instructions] [-pcs 4] [-linkage ward|single|complete|average] [-v] [-progress]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	speckit "repro"
	"repro/internal/cluster"
	"repro/internal/report"
)

func main() {
	nFlag := flag.Uint64("n", 300000, "simulated instructions per pair")
	pcsFlag := flag.Int("pcs", 0, "retained principal components (0 = cover 76% variance)")
	linkFlag := flag.String("linkage", "ward", "clustering linkage: ward, single, complete, average")
	verbose := flag.Bool("v", false, "print per-cluster membership and the Pareto sweep")
	progressFlag := flag.Bool("progress", false, "print a live progress meter to stderr")
	batchFlag := flag.Int("batch", 0, "simulation kernel batch size in uops (0 = default; results are batch-size independent)")
	flag.Parse()

	if err := run(*nFlag, *pcsFlag, *linkFlag, *verbose, *progressFlag, *batchFlag); err != nil {
		fmt.Fprintln(os.Stderr, "specsubset:", err)
		os.Exit(1)
	}
}

func run(n uint64, pcs int, linkName string, verbose, progress bool, batch int) error {
	linkage, err := pickLinkage(linkName)
	if err != nil {
		return err
	}
	// The rate and speed campaigns share a result cache, so pairs common
	// to both (none today, but cheap insurance) and tool re-runs within a
	// process simulate once.
	opt := speckit.Options{Instructions: n, Cache: speckit.NewCache(), BatchSize: batch}
	if progress {
		opt.Progress = speckit.ProgressPrinter(os.Stderr)
	}
	sopt := speckit.SubsetOptions{Components: pcs, Linkage: linkage}

	results := map[string]*speckit.SubsetResult{}
	for _, group := range []struct {
		name  string
		minis []speckit.MiniSuite
	}{
		{"rate", []speckit.MiniSuite{speckit.RateInt, speckit.RateFP}},
		{"speed", []speckit.MiniSuite{speckit.SpeedInt, speckit.SpeedFP}},
	} {
		var suite speckit.Suite
		for _, m := range group.minis {
			suite = append(suite, speckit.CPU2017().Mini(m)...)
		}
		chars, err := speckit.Characterize(suite, speckit.Ref, opt)
		if err != nil {
			return err
		}
		res, err := speckit.Subset(chars, sopt)
		if err != nil {
			return err
		}
		results[group.name] = res
		fmt.Printf("%s: %d pairs, %d PCs (%.1f%% variance), chose %d clusters\n",
			group.name, len(chars), res.Components, res.VarianceExplained*100, res.ChosenK)
		if verbose {
			printDetail(res)
		}
	}

	fmt.Println()
	return speckit.TableX(results["rate"], results["speed"]).WriteText(os.Stdout)
}

func printDetail(res *speckit.SubsetResult) {
	t := report.NewTable("  Pareto sweep", "k", "SSE", "Subset time (s)")
	for _, tr := range res.Tradeoffs {
		if tr.K > res.ChosenK+5 {
			break
		}
		t.AddRowf(tr.K, tr.SSE, tr.Cost)
	}
	t.WriteText(os.Stdout)
	assign := res.Dendrogram.Cut(res.ChosenK)
	byCluster := map[int][]string{}
	for i, name := range res.PairNames {
		byCluster[assign[i]] = append(byCluster[assign[i]], name)
	}
	for _, rep := range res.Representatives {
		fmt.Printf("  cluster %d (rep %s, %.0fs): %s\n",
			rep.Cluster, rep.Name, rep.ExecSeconds,
			strings.Join(byCluster[rep.Cluster], ", "))
	}
}

func pickLinkage(name string) (cluster.Linkage, error) {
	switch strings.ToLower(name) {
	case "ward", "":
		return cluster.Ward, nil
	case "single":
		return cluster.Single, nil
	case "complete":
		return cluster.Complete, nil
	case "average":
		return cluster.Average, nil
	default:
		return cluster.Ward, fmt.Errorf("unknown linkage %q", name)
	}
}
