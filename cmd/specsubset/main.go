// Command specsubset runs the paper's Section V methodology: it
// characterizes the CPU2017 rate and speed suites, performs PCA and
// hierarchical clustering over the 20 microarchitecture-independent
// characteristics, and prints the suggested representative subsets with
// their execution-time savings (Table X).
//
// Usage:
//
//	specsubset [-n instructions] [-pcs 4] [-linkage ward|single|complete|average]
//	           [-v] [-progress] [-cache-dir DIR] [-sampling off|default|P/D/W]
//	           [-j N] [-trace FILE] [-slow-pair DUR]
//
// Ctrl-C (or SIGTERM) cancels the in-flight campaign through the
// scheduler's context path rather than killing the process mid-write.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	speckit "repro"
	"repro/internal/cliflags"
	"repro/internal/cluster"
	"repro/internal/report"
)

// config collects the tool's flags; the embedded Campaign carries the
// ones shared across the speckit tools.
type config struct {
	n       uint64
	pcs     int
	linkage string
	verbose bool
	cliflags.Campaign
}

func main() {
	var cfg config
	flag.Uint64Var(&cfg.n, "n", 300000, "simulated instructions per pair")
	flag.IntVar(&cfg.pcs, "pcs", 0, "retained principal components (0 = cover 76% variance)")
	flag.StringVar(&cfg.linkage, "linkage", "ward", "clustering linkage: ward, single, complete, average")
	flag.BoolVar(&cfg.verbose, "v", false, "print per-cluster membership and the Pareto sweep")
	cfg.Campaign.Register(flag.CommandLine)
	flag.Parse()

	ctx, stop := cliflags.SignalContext()
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "specsubset:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg config) error {
	linkage, err := pickLinkage(cfg.linkage)
	if err != nil {
		return err
	}
	// The rate and speed campaigns share a result cache, so pairs common
	// to both (none today, but cheap insurance) and tool re-runs within a
	// process simulate once; with -cache-dir that reuse extends across
	// processes.
	opt, err := cfg.Campaign.Options(ctx)
	if err != nil {
		return err
	}
	opt.Instructions = cfg.n
	sopt := speckit.SubsetOptions{Components: cfg.pcs, Linkage: linkage}

	results := map[string]*speckit.SubsetResult{}
	for _, group := range []struct {
		name  string
		minis []speckit.MiniSuite
	}{
		{"rate", []speckit.MiniSuite{speckit.RateInt, speckit.RateFP}},
		{"speed", []speckit.MiniSuite{speckit.SpeedInt, speckit.SpeedFP}},
	} {
		var suite speckit.Suite
		for _, m := range group.minis {
			suite = append(suite, speckit.CPU2017().Mini(m)...)
		}
		chars, err := speckit.Characterize(suite, speckit.Ref, opt)
		if err != nil {
			return err
		}
		res, err := speckit.Subset(chars, sopt)
		if err != nil {
			return err
		}
		results[group.name] = res
		fmt.Printf("%s: %d pairs, %d PCs (%.1f%% variance), chose %d clusters\n",
			group.name, len(chars), res.Components, res.VarianceExplained*100, res.ChosenK)
		if cfg.verbose {
			printDetail(res)
		}
	}
	if err := cfg.Campaign.Finish(); err != nil {
		return err
	}

	fmt.Println()
	return speckit.TableX(results["rate"], results["speed"]).WriteText(os.Stdout)
}

func printDetail(res *speckit.SubsetResult) {
	t := report.NewTable("  Pareto sweep", "k", "SSE", "Subset time (s)")
	for _, tr := range res.Tradeoffs {
		if tr.K > res.ChosenK+5 {
			break
		}
		t.AddRowf(tr.K, tr.SSE, tr.Cost)
	}
	t.WriteText(os.Stdout)
	assign := res.Dendrogram.Cut(res.ChosenK)
	byCluster := map[int][]string{}
	for i, name := range res.PairNames {
		byCluster[assign[i]] = append(byCluster[assign[i]], name)
	}
	for _, rep := range res.Representatives {
		fmt.Printf("  cluster %d (rep %s, %.0fs): %s\n",
			rep.Cluster, rep.Name, rep.ExecSeconds,
			strings.Join(byCluster[rep.Cluster], ", "))
	}
}

func pickLinkage(name string) (cluster.Linkage, error) {
	switch strings.ToLower(name) {
	case "ward", "":
		return cluster.Ward, nil
	case "single":
		return cluster.Single, nil
	case "complete":
		return cluster.Complete, nil
	case "average":
		return cluster.Average, nil
	default:
		return cluster.Ward, fmt.Errorf("unknown linkage %q", name)
	}
}
