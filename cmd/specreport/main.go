// Command specreport regenerates every table and figure of the paper's
// evaluation section into an output directory: Tables II-X as text and
// CSV, Figures 1-10 as SVG, plus a summary of paper-vs-measured
// aggregates (the data behind EXPERIMENTS.md).
//
// Usage:
//
//	specreport [-out report] [-n instructions] [-progress] [-cache-dir DIR]
//
// Ctrl-C (or SIGTERM) cancels the in-flight campaign through the
// scheduler's context path rather than killing the process mid-write.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	speckit "repro"
	"repro/internal/report"
)

// config collects the tool's flags.
type config struct {
	out      string
	n        uint64
	progress bool
	batch    int
	cacheDir string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.out, "out", "report", "output directory")
	flag.Uint64Var(&cfg.n, "n", 300000, "simulated instructions per pair")
	flag.BoolVar(&cfg.progress, "progress", false, "print a live progress meter (with per-tier cache hits) to stderr")
	flag.IntVar(&cfg.batch, "batch", 0, "simulation kernel batch size in uops (0 = default; results are batch-size independent)")
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "persistent result-store directory: pair results are saved as checksummed content-addressed records, and repeated runs with the same models, machine and options are re-used bit-identically instead of re-simulated (empty = in-memory cache only)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "specreport:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg config) error {
	outDir := cfg.out
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	// One cache spans every campaign below, so any pair shared between
	// them (or a re-run of this tool within one process) simulates once;
	// with -cache-dir that reuse extends across processes.
	opt := speckit.Options{Instructions: cfg.n, Cache: speckit.NewCache(), BatchSize: cfg.batch, Context: ctx}
	if cfg.progress {
		opt.Progress = speckit.ProgressPrinter(os.Stderr)
	}
	if cfg.cacheDir != "" {
		st, err := speckit.OpenStore(cfg.cacheDir)
		if err != nil {
			return err
		}
		opt.Store = st
	}

	fmt.Println("characterizing CPU2017 at test/train/ref (194 pairs)...")
	all17, err := speckit.CharacterizeAllSizes(speckit.CPU2017(), opt)
	if err != nil {
		return err
	}
	var ref17 []speckit.Characteristics
	for i := range all17 {
		if all17[i].Pair.Size == speckit.Ref {
			ref17 = append(ref17, all17[i])
		}
	}
	fmt.Println("characterizing CPU2006 at ref...")
	ref06, err := speckit.Characterize(speckit.CPU2006(), speckit.Ref, opt)
	if err != nil {
		return err
	}

	fmt.Println("running subsetting methodology...")
	var rate, speed []speckit.Characteristics
	for _, m := range []speckit.MiniSuite{speckit.RateInt, speckit.RateFP} {
		rate = append(rate, speckit.BySuite(ref17, m)...)
	}
	for _, m := range []speckit.MiniSuite{speckit.SpeedInt, speckit.SpeedFP} {
		speed = append(speed, speckit.BySuite(ref17, m)...)
	}
	rateRes, err := speckit.Subset(rate, speckit.SubsetOptions{})
	if err != nil {
		return err
	}
	speedRes, err := speckit.Subset(speed, speckit.SubsetOptions{})
	if err != nil {
		return err
	}

	// Tables.
	tables := map[string]*speckit.Table{
		"table2":  speckit.TableII(all17),
		"table3":  speckit.TableIII(ref17, ref06),
		"table4":  speckit.TableIV(ref17, ref06),
		"table5":  speckit.TableV(ref17, ref06),
		"table6":  speckit.TableVI(ref17, ref06),
		"table7":  speckit.TableVII(ref17, ref06),
		"table9":  speckit.TableIX(ref17),
		"table10": speckit.TableX(rateRes, speedRes),
	}
	for name, t := range tables {
		if err := writeTable(outDir, name, t); err != nil {
			return err
		}
	}

	// Figures 1-6: per-application bar panels.
	figures := map[string][]*speckit.FigureSeries{
		"fig1": speckit.Fig1(ref17), "fig2": speckit.Fig2(ref17),
		"fig3": speckit.Fig3(ref17), "fig4": speckit.Fig4(ref17),
		"fig5": speckit.Fig5(ref17), "fig6": speckit.Fig6(ref17),
		"cpistack": speckit.FigCPIStack(ref17),
	}
	for name, panels := range figures {
		for i, p := range panels {
			suffix := string(rune('a' + i))
			if err := writeFile(outDir, name+suffix+".svg", p.SVG()); err != nil {
				return err
			}
		}
	}

	// Figures 7-10: PCA, loadings, dendrograms, Pareto.
	pc12, pc34 := speckit.Fig7(rateRes)
	svgs := map[string]string{
		"fig7a.svg":  pc12,
		"fig7b.svg":  pc34,
		"fig8.svg":   speckit.Fig8(rateRes),
		"fig9a.svg":  speckit.Fig9("Fig 9a: rate dendrogram", rateRes),
		"fig9b.svg":  speckit.Fig9("Fig 9b: speed dendrogram", speedRes),
		"fig10a.svg": speckit.Fig10("Fig 10a: rate Pareto", rateRes),
		"fig10b.svg": speckit.Fig10("Fig 10b: speed Pareto", speedRes),
	}
	for name, svg := range svgs {
		if err := writeFile(outDir, name, svg); err != nil {
			return err
		}
	}

	// Extensions beyond the paper's exhibits: the PC-space similarity
	// heatmap backing Fig 7's clustering argument, reuse-distance
	// profiles for two contrasting applications, and the future-work
	// phase analysis demo.
	if err := writeFile(outDir, "similarity.svg",
		speckit.SimilarityHeatmapSVG("Pairwise distance in PC space (rate)", rateRes)); err != nil {
		return err
	}
	for _, name := range []string{"505.mcf_r", "525.x264_r"} {
		for _, app := range speckit.CPU2017() {
			if app.Name != name {
				continue
			}
			h, err := speckit.AnalyzeReuse(app, speckit.Ref, 60000)
			if err != nil {
				return err
			}
			if err := writeFile(outDir, "reuse-"+name+".svg",
				speckit.ReuseHistogramSVG(name+" reuse distances", h)); err != nil {
				return err
			}
		}
	}

	// Summary of the headline paper-vs-measured aggregates.
	summary := buildSummary(ref17, ref06, rateRes, speedRes)
	if err := writeFile(outDir, "summary.txt", summary); err != nil {
		return err
	}
	fmt.Print(summary)
	if cfg.progress {
		s := opt.Cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d memory hits, %d store hits, %d misses (%.0f%% hit rate)\n",
			s.MemoryHits, s.StoreHits, s.Misses, 100*s.HitRate())
	}
	fmt.Printf("report written to %s\n", outDir)
	return nil
}

func buildSummary(ref17, ref06 []speckit.Characteristics, rateRes, speedRes *speckit.SubsetResult) string {
	var b strings.Builder
	t := report.NewTable("Paper vs measured (ref inputs)", "Quantity", "Paper", "Measured")
	ipc17 := speckit.Aggregate(ref17, func(c *speckit.Characteristics) float64 { return c.IPC })
	ipc06 := speckit.Aggregate(ref06, func(c *speckit.Characteristics) float64 { return c.IPC })
	t.AddRowf("CPU17 mean IPC", 1.457, ipc17.Mean)
	t.AddRowf("CPU06 mean IPC", 1.784, ipc06.Mean)
	mem := speckit.Aggregate(ref17, func(c *speckit.Characteristics) float64 { return c.MemPct() })
	t.AddRowf("CPU17 memory uops %", 33.993, mem.Mean)
	misp := speckit.Aggregate(ref17, func(c *speckit.Characteristics) float64 { return c.MispredictPct })
	t.AddRowf("CPU17 mispredict %", 2.198, misp.Mean)
	l2 := speckit.Aggregate(ref17, func(c *speckit.Characteristics) float64 { return c.L2MissPct })
	t.AddRowf("CPU17 L2 miss %", 32.515, l2.Mean)
	t.AddRowf("Conditional branch share", 0.787, speckit.ConditionalShare(ref17))
	t.AddRowf("Rate subset size", 12, rateRes.ChosenK)
	t.AddRowf("Speed subset size", 10, speedRes.ChosenK)
	t.AddRowf("Rate subset % saving", 57.116, 100*rateRes.Saving())
	t.AddRowf("Speed subset % saving", 62.052, 100*speedRes.Saving())
	t.AddRowf("4-PC variance %", 76.321, 100*rateRes.PCA.VarianceExplained(4))
	// Section V: "required about 10 hours and 53 minutes to completely
	// run all the pairs" (39180 s); Section II: CPU17's instruction count
	// grew 3.830x over CPU06.
	i17 := speckit.Aggregate(ref17, func(c *speckit.Characteristics) float64 { return c.InstrBillions })
	i06 := speckit.Aggregate(ref06, func(c *speckit.Characteristics) float64 { return c.InstrBillions })
	t.AddRowf("CPU17/CPU06 instr ratio", 3.830, i17.Mean/i06.Mean)
	t.WriteText(&b)
	return b.String()
}

func writeTable(dir, name string, t *speckit.Table) error {
	var txt, csv strings.Builder
	if err := t.WriteText(&txt); err != nil {
		return err
	}
	if err := t.WriteCSV(&csv); err != nil {
		return err
	}
	if err := writeFile(dir, name+".txt", txt.String()); err != nil {
		return err
	}
	return writeFile(dir, name+".csv", csv.String())
}

func writeFile(dir, name, content string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}
