package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunWritesAllArtifacts drives the full report generation end to end
// with a small simulation window and checks every expected file exists
// and is well-formed.
func TestRunWritesAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full report generation in -short mode")
	}
	dir := t.TempDir()
	if err := run(context.Background(), config{out: dir, n: 25000}); err != nil {
		t.Fatalf("run: %v", err)
	}
	wantFiles := []string{
		"table2.txt", "table2.csv", "table3.txt", "table4.txt", "table5.txt",
		"table6.txt", "table7.txt", "table9.txt", "table10.txt",
		"fig1a.svg", "fig1b.svg", "fig2a.svg", "fig3a.svg", "fig4a.svg",
		"fig5a.svg", "fig6a.svg", "cpistacka.svg", "cpistackb.svg",
		"fig7a.svg", "fig7b.svg", "fig8.svg", "fig9a.svg", "fig9b.svg",
		"fig10a.svg", "fig10b.svg",
		"similarity.svg", "reuse-505.mcf_r.svg", "reuse-525.x264_r.svg",
		"summary.txt",
	}
	for _, name := range wantFiles {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("artifact %s is empty", name)
		}
		if strings.HasSuffix(name, ".svg") && !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("artifact %s is not an SVG", name)
		}
	}
	summary, err := os.ReadFile(filepath.Join(dir, "summary.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CPU17 mean IPC", "Rate subset size", "instr ratio"} {
		if !strings.Contains(string(summary), want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestRunRejectsBadDir(t *testing.T) {
	if err := run(context.Background(), config{out: "/proc/definitely/not/writable", n: 1000}); err == nil {
		t.Error("unwritable output dir accepted")
	}
}
